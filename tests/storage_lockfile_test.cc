// Directory lockfile: exclusive on-disk ownership via flock on <dir>/LOCK.
//
// A second opener of a live directory must fail FAST with Status::Busy
// (retryable, no blocking on the holder), the holder must be unaffected,
// the lock must release on clean close, and a LOCK file left behind by a
// crashed process must be reclaimable because flock dies with the holder's
// open file description rather than living in the file's contents.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>

#include "graph/graph_database.h"

namespace neosi {
namespace {

class LockfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("neosi_lock_" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  DatabaseOptions DiskOptions() {
    DatabaseOptions options;
    options.in_memory = false;
    options.path = dir_.string();
    options.background_gc_interval_ms = 0;
    options.checkpoint_interval_ms = 0;
    return options;
  }

  std::filesystem::path dir_;
};

TEST_F(LockfileTest, SecondOpenerFailsFastWithBusy) {
  auto holder = std::move(*GraphDatabase::Open(DiskOptions()));
  {
    auto txn = holder->Begin();
    ASSERT_TRUE(txn->CreateNode({"Seed"}).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }

  // flock is per open file description, so a second Open in this same
  // process conflicts exactly like a second process would.
  const auto before = std::chrono::steady_clock::now();
  auto second = GraphDatabase::Open(DiskOptions());
  const auto elapsed = std::chrono::steady_clock::now() - before;

  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsBusy()) << second.status().ToString();
  EXPECT_TRUE(second.status().IsRetryable());
  // Fail fast: LOCK_NB, not a blocking wait on the holder.
  EXPECT_LT(elapsed, std::chrono::seconds(5));

  // The holder is entirely unaffected by the rejected intruder: its WAL was
  // never replayed or truncated under it, and it can still commit.
  auto txn = holder->Begin();
  ASSERT_TRUE(txn->CreateNode({"AfterIntruder"}).ok());
  EXPECT_TRUE(txn->Commit().ok());
  auto reader = holder->Begin();
  EXPECT_EQ(reader->GetNodesByLabel("Seed")->size(), 1u);
  EXPECT_EQ(reader->GetNodesByLabel("AfterIntruder")->size(), 1u);
}

TEST_F(LockfileTest, LockReleasesOnCleanClose) {
  {
    auto holder = std::move(*GraphDatabase::Open(DiskOptions()));
    auto txn = holder->Begin();
    ASSERT_TRUE(txn->CreateNode({"Persisted"}).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }  // Clean close: destructor releases the flock.

  auto reopened = GraphDatabase::Open(DiskOptions());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto reader = (*reopened)->Begin();
  EXPECT_EQ(reader->GetNodesByLabel("Persisted")->size(), 1u);
}

TEST_F(LockfileTest, CrashLeftLockFileIsReclaimed) {
  // Simulate a crashed holder: the LOCK file exists on disk but no live
  // process holds the flock (kernel dropped it when the fd died).
  {
    std::ofstream stale((dir_ / "LOCK").string());
    stale << "";  // Content is irrelevant; flock ignores it.
  }
  ASSERT_TRUE(std::filesystem::exists(dir_ / "LOCK"));

  auto db = GraphDatabase::Open(DiskOptions());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto txn = (*db)->Begin();
  ASSERT_TRUE(txn->CreateNode({"Reclaimed"}).ok());
  EXPECT_TRUE(txn->Commit().ok());
}

TEST_F(LockfileTest, InMemoryDatabasesNeverConflict) {
  DatabaseOptions options;  // in-memory by default
  auto a = GraphDatabase::Open(options);
  auto b = GraphDatabase::Open(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
}

}  // namespace
}  // namespace neosi
