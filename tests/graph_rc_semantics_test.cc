// Read-committed baseline semantics (stock Neo4j, §2): short shared read
// locks + long exclusive write locks. The paper keeps RC as the point of
// comparison; these tests pin down exactly what our baseline does.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "graph/graph_database.h"

namespace neosi {
namespace {

std::unique_ptr<GraphDatabase> OpenDb() {
  DatabaseOptions options;
  options.in_memory = true;
  return std::move(*GraphDatabase::Open(options));
}

TEST(RcSemantics, ReadsSeeLatestCommitted) {
  auto db = OpenDb();
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{1})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto reader = db->Begin(IsolationLevel::kReadCommitted);
  EXPECT_EQ(reader->GetNodeProperty(id, "v")->AsInt(), 1);
  for (int i = 2; i <= 4; ++i) {
    auto writer = db->Begin();
    ASSERT_TRUE(writer->SetNodeProperty(id, "v", PropertyValue(int64_t{i})).ok());
    ASSERT_TRUE(writer->Commit().ok());
    // RC follows the newest committed value immediately.
    EXPECT_EQ(reader->GetNodeProperty(id, "v")->AsInt(), i);
  }
}

TEST(RcSemantics, NeverSeesUncommittedData) {
  auto db = OpenDb();
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{1})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  // Writer holds a dirty value (no commit). Use an SI writer so the RC
  // reader's short read lock is the only blocking interaction we test.
  auto writer = db->Begin(IsolationLevel::kSnapshotIsolation);
  ASSERT_TRUE(writer->SetNodeProperty(id, "v", PropertyValue(int64_t{99})).ok());

  // RC reader with an OLDER txn id would wait on the lock; use wait-die
  // semantics to observe blocking instead: spawn the reader in a thread and
  // let the writer commit.
  std::atomic<int64_t> observed{-1};
  std::thread reader_thread([&] {
    // This transaction is younger than `writer`, so wait-die would kill it
    // rather than block; retry until the read succeeds post-commit.
    for (;;) {
      auto reader = db->Begin(IsolationLevel::kReadCommitted);
      auto v = reader->GetNodeProperty(id, "v");
      if (v.ok()) {
        observed.store(v->AsInt());
        return;
      }
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(writer->Commit().ok());
  reader_thread.join();
  // Whatever was observed, it was a committed value: 1 or 99, never torn.
  EXPECT_TRUE(observed.load() == 1 || observed.load() == 99);
}

TEST(RcSemantics, OlderReaderBlocksOnWriterUntilCommit) {
  auto db = OpenDb();
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{1})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  // Begin the READER first (older), then the writer (younger): wait-die
  // lets the older reader wait for the younger writer's long lock.
  auto reader = db->Begin(IsolationLevel::kReadCommitted);
  auto writer = db->Begin(IsolationLevel::kSnapshotIsolation);
  ASSERT_TRUE(writer->SetNodeProperty(id, "v", PropertyValue(int64_t{2})).ok());

  std::atomic<bool> read_done{false};
  std::atomic<int64_t> observed{-1};
  std::thread reader_thread([&] {
    auto v = reader->GetNodeProperty(id, "v");  // Blocks on the write lock.
    if (v.ok()) observed.store(v->AsInt());
    read_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(read_done.load()) << "RC read must block on the write lock";
  ASSERT_TRUE(writer->Commit().ok());
  reader_thread.join();
  EXPECT_EQ(observed.load(), 2) << "after the commit, RC sees the new value";
}

TEST(RcSemantics, SiReaderDoesNotBlockWhereRcDoes) {
  auto db = OpenDb();
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{1})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto si_reader = db->Begin(IsolationLevel::kSnapshotIsolation);
  auto writer = db->Begin(IsolationLevel::kSnapshotIsolation);
  ASSERT_TRUE(writer->SetNodeProperty(id, "v", PropertyValue(int64_t{2})).ok());
  // The exact scenario that blocks the RC reader above completes instantly
  // under SI (the paper's "avoiding read-write conflicts").
  auto v = si_reader->GetNodeProperty(id, "v");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(), 1);
  ASSERT_TRUE(writer->Commit().ok());
}

TEST(RcSemantics, WriteLocksStillExcludeWriters) {
  // RC writers conflict exactly like SI writers on the long lock (but the
  // wait ends in proceeding, not an SI timestamp abort).
  auto db = OpenDb();
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto t1 = db->Begin(IsolationLevel::kReadCommitted);
  ASSERT_TRUE(t1->SetNodeProperty(id, "v", PropertyValue(int64_t{1})).ok());

  std::atomic<bool> t2_done{false};
  std::thread t2_thread([&] {
    // t1 is older; t2 (younger) dies under wait-die and retries until t1
    // commits and releases.
    for (;;) {
      auto t2 = db->Begin(IsolationLevel::kReadCommitted);
      Status s = t2->SetNodeProperty(id, "v", PropertyValue(int64_t{2}));
      if (s.ok()) {
        ASSERT_TRUE(t2->Commit().ok());
        t2_done.store(true);
        return;
      }
      ASSERT_TRUE(s.IsRetryable()) << s;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(t2_done.load());
  ASSERT_TRUE(t1->Commit().ok());
  t2_thread.join();
  // Last writer wins under RC: no timestamp validation aborts it.
  auto reader = db->Begin();
  EXPECT_EQ(reader->GetNodeProperty(id, "v")->AsInt(), 2);
}

TEST(RcSemantics, RcReadersDoNotPinTheGcWatermark) {
  // Since the epoch read path, RC registrations are exempt from watermark
  // pinning: they read latest-committed versions (never reclaimable) under
  // epoch protection, so reclamation need not wait for them. An open RC
  // transaction must leave the watermark at the oracle, and GC must prune
  // superseded versions right past it — while the reader keeps working.
  auto db = OpenDb();
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    ASSERT_TRUE(txn->Commit().ok());
  }

  auto rc = db->Begin(IsolationLevel::kReadCommitted);
  ASSERT_EQ(rc->GetNodeProperty(id, "v")->AsInt(), 0);
  // No pin: the watermark tracks the oracle exactly despite the open RC.
  EXPECT_EQ(db->Watermark(), db->engine().oracle.ReadTs());

  // An SI reader in the same position DOES pin the watermark.
  {
    auto si = db->Begin(IsolationLevel::kSnapshotIsolation);
    const Timestamp pinned = db->Watermark();
    auto w = db->Begin(IsolationLevel::kSnapshotIsolation);
    ASSERT_TRUE(w->SetNodeProperty(id, "v", PropertyValue(int64_t{1})).ok());
    ASSERT_TRUE(w->Commit().ok());
    EXPECT_EQ(db->Watermark(), pinned) << "SI snapshot must hold the watermark";
    ASSERT_TRUE(si->Commit().ok());
  }

  // Churn the entity, then collect: with only the RC transaction open, the
  // whole superseded tail is reclaimable and the chain prunes to length 1.
  for (int i = 2; i <= 9; ++i) {
    auto w = db->Begin(IsolationLevel::kSnapshotIsolation);
    ASSERT_TRUE(w->SetNodeProperty(id, "v", PropertyValue(int64_t{i})).ok());
    ASSERT_TRUE(w->Commit().ok());
  }
  db->RunGc();
  auto node = db->engine().cache->PeekNode(id);
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->chain.Length(), 1u) << "open RC reader must not block GC";

  // The RC reader is unharmed: it sees the newest committed value.
  auto read = rc->GetNodeProperty(id, "v");
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read->AsInt(), 9);
  EXPECT_TRUE(rc->Commit().ok());
}

TEST(RcSemantics, RcUpdateAfterConcurrentCommitSucceeds) {
  // The defining RC-vs-SI write difference: an RC transaction may update an
  // entity that a concurrent transaction changed since it began (no
  // first-updater-wins timestamp check).
  auto db = OpenDb();
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto rc = db->Begin(IsolationLevel::kReadCommitted);
  ASSERT_EQ(rc->GetNodeProperty(id, "v")->AsInt(), 0);
  {
    auto other = db->Begin();
    ASSERT_TRUE(other->SetNodeProperty(id, "v", PropertyValue(int64_t{5})).ok());
    ASSERT_TRUE(other->Commit().ok());
  }
  // SI would abort here; RC happily overwrites.
  EXPECT_TRUE(rc->SetNodeProperty(id, "v", PropertyValue(int64_t{6})).ok());
  EXPECT_TRUE(rc->Commit().ok());
  auto reader = db->Begin();
  EXPECT_EQ(reader->GetNodeProperty(id, "v")->AsInt(), 6);
}

}  // namespace
}  // namespace neosi
