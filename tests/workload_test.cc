// Workload library: generators, Zipf, histogram, driver, TPC-C invariants.

#include <gtest/gtest.h>

#include "workload/bank.h"
#include "workload/driver.h"
#include "workload/histogram.h"
#include "workload/social_graph.h"
#include "workload/tpcc_graph.h"
#include "workload/zipf.h"

namespace neosi {
namespace {

std::unique_ptr<GraphDatabase> OpenDb() {
  DatabaseOptions options;
  options.in_memory = true;
  return std::move(*GraphDatabase::Open(options));
}

TEST(Zipf, UniformWhenThetaZero) {
  ZipfSampler zipf(10, 0.0, 1);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Next()];
  for (int c : counts) {
    EXPECT_GT(c, 8000);
    EXPECT_LT(c, 12000);
  }
}

TEST(Zipf, SkewConcentratesOnHotKeys) {
  ZipfSampler zipf(1000, 0.99, 1);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Next()];
  // Key 0 should be far hotter than key 500.
  EXPECT_GT(counts[0], counts[500] * 20);
  // Hottest 10 keys take a large share.
  int hot = 0;
  for (int i = 0; i < 10; ++i) hot += counts[i];
  EXPECT_GT(hot, 30000);
}

TEST(Histogram, BasicStats) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  EXPECT_EQ(h.Count(), 1000u);
  EXPECT_EQ(h.Min(), 1u);
  EXPECT_EQ(h.Max(), 1000u);
  EXPECT_NEAR(h.Mean(), 500.5, 0.01);
  // Percentiles within bucket error (~6%).
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 500, 50);
  EXPECT_NEAR(static_cast<double>(h.Percentile(99)), 990, 80);
}

TEST(Histogram, MergeCombines) {
  Histogram a, b;
  for (uint64_t v = 0; v < 100; ++v) a.Record(10);
  for (uint64_t v = 0; v < 100; ++v) b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 200u);
  EXPECT_EQ(a.Min(), 10u);
  EXPECT_EQ(a.Max(), 1000u);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Percentile(50), 0u);
}

TEST(Driver, RunForOpsHitsQuota) {
  std::atomic<int> calls{0};
  DriverResult result = RunForOps(3, 10, [&](int, uint64_t) {
    calls.fetch_add(1);
    return Status::OK();
  });
  EXPECT_EQ(result.committed, 30u);
  EXPECT_EQ(result.aborted, 0u);
  EXPECT_EQ(calls.load(), 30);
}

TEST(Driver, RetryableAbortsAreRetried) {
  std::atomic<int> calls{0};
  DriverResult result = RunForOps(1, 5, [&](int, uint64_t) {
    // Every other attempt conflicts.
    return (calls.fetch_add(1) % 2 == 0) ? Status::Aborted("conflict")
                                         : Status::OK();
  });
  EXPECT_EQ(result.committed, 5u);
  EXPECT_EQ(result.aborted, 5u);
  EXPECT_GT(result.AbortRate(), 0.4);
  EXPECT_LT(result.AbortRate(), 0.6);
}

TEST(SocialGraph, BuildsConnectedLabeledGraph) {
  auto db = OpenDb();
  SocialGraphSpec spec;
  spec.people = 100;
  spec.extra_edges_per_person = 1;
  auto graph = BuildSocialGraph(*db, spec);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->people.size(), 100u);
  EXPECT_EQ(graph->friendships.size(), 200u);  // Ring + 1 chord each.

  auto txn = db->Begin();
  EXPECT_EQ(txn->GetNodesByLabel("Person")->size(), 100u);
  // The ring guarantees full connectivity.
  auto rels = txn->GetRelationships(graph->people[0]);
  ASSERT_TRUE(rels.ok());
  EXPECT_GE(rels->size(), 2u);
  auto age = txn->GetNodeProperty(graph->people[0], "age");
  ASSERT_TRUE(age.ok());
  EXPECT_GE(age->AsInt(), 18);
}

TEST(Bank, TransfersConserveTotal) {
  auto db = OpenDb();
  auto bank = *BuildBank(*db, 10, 100);
  EXPECT_EQ(*Audit(*db, bank, IsolationLevel::kSnapshotIsolation), 1000);
  ASSERT_TRUE(
      Transfer(*db, bank, 0, 1, 30, IsolationLevel::kSnapshotIsolation).ok());
  ASSERT_TRUE(
      Transfer(*db, bank, 2, 3, 55, IsolationLevel::kSnapshotIsolation).ok());
  EXPECT_EQ(*Audit(*db, bank, IsolationLevel::kSnapshotIsolation), 1000);
  auto txn = db->Begin();
  EXPECT_EQ(txn->GetNodeProperty(bank.accounts[0], "balance")->AsInt(), 70);
  EXPECT_EQ(txn->GetNodeProperty(bank.accounts[1], "balance")->AsInt(), 130);
}

TEST(Bank, WriteSkewBreaksWardConstraintUnderSi) {
  // Deterministic sequential write skew: both doctors observe the other on
  // call in overlapping transactions (§1: SI's one anomaly).
  auto db = OpenDb();
  auto ward = *BuildWard(*db);
  auto t1 = db->Begin(IsolationLevel::kSnapshotIsolation);
  auto t2 = db->Begin(IsolationLevel::kSnapshotIsolation);
  ASSERT_TRUE(t1->GetNodeProperty(ward.doctor_b, "on_call")->AsBool());
  ASSERT_TRUE(t2->GetNodeProperty(ward.doctor_a, "on_call")->AsBool());
  ASSERT_TRUE(
      t1->SetNodeProperty(ward.doctor_a, "on_call", PropertyValue(false)).ok());
  ASSERT_TRUE(
      t2->SetNodeProperty(ward.doctor_b, "on_call", PropertyValue(false)).ok());
  ASSERT_TRUE(t1->Commit().ok());
  ASSERT_TRUE(t2->Commit().ok());
  EXPECT_FALSE(*WardConstraintHolds(*db, ward));
}

TEST(Tpcc, NewOrderMaintainsStockInvariant) {
  auto db = OpenDb();
  TpccSpec spec;
  spec.warehouses = 1;
  spec.items_per_warehouse = 10;
  spec.customers_per_warehouse = 3;
  spec.initial_stock = 100;
  auto graph = *BuildTpccGraph(*db, spec);

  ASSERT_TRUE(NewOrder(*db, graph, 0, 0, {1, 3, 5}, 7,
                       IsolationLevel::kSnapshotIsolation)
                  .ok());
  ASSERT_TRUE(NewOrder(*db, graph, 0, 1, {2, 3}, 4,
                       IsolationLevel::kSnapshotIsolation)
                  .ok());
  // stock + ordered == items * initial_stock.
  EXPECT_EQ(*AuditWarehouse(*db, graph, 0),
            graph.ExpectedStockPlusOrdered(0));
}

TEST(Tpcc, ConcurrentMixKeepsInvariantUnderSi) {
  auto db = OpenDb();
  TpccSpec spec;
  spec.warehouses = 1;
  spec.items_per_warehouse = 20;
  spec.customers_per_warehouse = 5;
  auto graph = *BuildTpccGraph(*db, spec);

  DriverResult result = RunForOps(4, 25, [&](int t, uint64_t op) {
    Random rng(t * 31 + op);
    if (rng.Bernoulli(0.7)) {
      std::vector<uint64_t> items;
      for (int i = 0; i < 3; ++i) items.push_back(rng.Uniform(20));
      return NewOrder(*db, graph, 0, rng.Uniform(5), items, 1,
                      IsolationLevel::kSnapshotIsolation);
    }
    return Payment(*db, graph, 0, rng.Uniform(5),
                   static_cast<int64_t>(rng.Uniform(50)),
                   IsolationLevel::kSnapshotIsolation);
  });
  EXPECT_EQ(result.errors, 0u);
  EXPECT_EQ(result.committed, 100u);
  // The serializability-relevant invariant holds: TPC-C-style workloads
  // exhibit no write-skew anomaly under SI (paper §1).
  EXPECT_EQ(*AuditWarehouse(*db, graph, 0),
            graph.ExpectedStockPlusOrdered(0));
}

}  // namespace
}  // namespace neosi
