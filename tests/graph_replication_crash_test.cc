// Kill-and-recover testing for the replication pair: the primary or the
// replica dies at a named WAL / checkpoint crash point, restarts, and the
// pair must converge to identical visible state with the shipping cursor
// resuming exactly where durability left off.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "graph/graph_database.h"
#include "fault_injection.h"

namespace neosi {
namespace {

namespace fs = std::filesystem;

struct PairDirs {
  fs::path primary;
  fs::path replica;

  explicit PairDirs(const std::string& tag) {
    const fs::path base = fs::temp_directory_path() / ("neosi_repl_" + tag);
    primary = base / "primary";
    replica = base / "replica";
    fs::remove_all(base);
    fs::create_directories(primary);
    fs::create_directories(replica);
  }
  ~PairDirs() {
    fs::remove_all(primary.parent_path());
  }
};

DatabaseOptions PrimaryOptions(const PairDirs& dirs) {
  DatabaseOptions options;
  options.in_memory = false;
  options.path = dirs.primary.string();
  options.background_gc_interval_ms = 0;  // Deterministic: no daemons.
  options.checkpoint_interval_ms = 0;
  options.sync_commits = true;
  options.wal_segment_size = 512;  // Rotate often.
  // Retain a few extra segments so a replica polling every handful of
  // commits never falls below the truncation cut, while truncation itself
  // still retires segments (the truncate crash points stay reachable).
  options.wal_keep_segments = 4;
  return options;
}

DatabaseOptions ReplicaOptions(const PairDirs& dirs) {
  DatabaseOptions options;
  options.in_memory = false;
  options.path = dirs.replica.string();
  options.replica_of_path = dirs.primary.string();
  options.replica_poll_interval_ms = 0;  // Manual: tests call RunOnce().
  options.background_gc_interval_ms = 0;
  options.checkpoint_interval_ms = 0;
  // Rotate the replica's own wal several times per shipped batch so the
  // local append-path crash points are reliably reachable mid-replay.
  options.wal_segment_size = 256;
  return options;
}

std::unique_ptr<GraphDatabase> MustOpen(const DatabaseOptions& options) {
  auto db = GraphDatabase::Open(options);
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(*db);
}

std::map<NodeId, std::pair<std::vector<std::string>, NamedProperties>>
Materialize(GraphDatabase* db) {
  std::map<NodeId, std::pair<std::vector<std::string>, NamedProperties>> out;
  TransactionOptions opts;
  opts.read_only = true;
  auto txn = db->Begin(IsolationLevel::kSnapshotIsolation, opts);
  auto nodes = txn->AllNodes();
  EXPECT_TRUE(nodes.ok()) << nodes.status();
  for (NodeId id : *nodes) {
    auto view = txn->GetNode(id);
    EXPECT_TRUE(view.ok()) << view.status();
    out[id] = {view->labels, view->props};
  }
  return out;
}

int CommitBatch(GraphDatabase* primary, int base, int count) {
  int committed = 0;
  for (int i = 0; i < count; ++i) {
    auto txn = primary->Begin();
    auto id = txn->CreateNode(
        {"Item"}, {{"seq", PropertyValue(int64_t{base + i})}});
    if (!id.ok() || !txn->Commit().ok()) break;
    ++committed;
  }
  return committed;
}

TEST(ReplicationCrash, ReplicaRestartResumesFromDurableCursor) {
  PairDirs dirs("resume");
  auto primary = MustOpen(PrimaryOptions(dirs));
  ASSERT_EQ(CommitBatch(primary.get(), 0, 10), 10);

  uint64_t applied_before = 0;
  {
    auto replica = MustOpen(ReplicaOptions(dirs));
    ASSERT_TRUE(replica->replica_applier()->RunOnce().ok());
    applied_before = replica->Stats().replica_records_applied;
    EXPECT_EQ(Materialize(primary.get()), Materialize(replica.get()));
  }  // Replica closes (clean "kill": daemons were never running).

  ASSERT_EQ(CommitBatch(primary.get(), 10, 10), 10);

  auto replica = MustOpen(ReplicaOptions(dirs));
  ASSERT_TRUE(replica->replica_applier()->RunOnce().ok());
  EXPECT_EQ(Materialize(primary.get()), Materialize(replica.get()));
  // The cursor file kept the restart from re-applying the first batch.
  EXPECT_LE(replica->Stats().replica_records_applied, applied_before + 12);
}

TEST(ReplicationCrash, ReplicaDiesAtEachLocalWalPointAndRecovers) {
  // The applier re-logs every shipped record through the replica's own WAL;
  // each of the append-path crash points therefore kills the replica
  // mid-replay. After a restart, local recovery plus the cursor re-ship
  // must converge to the primary's exact state.
  const std::vector<std::string> points = {
      "wal.append.mid_frame",
      "wal.segment.post_create",
      "wal.append.fail_after_roll",
  };
  for (const std::string& point : points) {
    SCOPED_TRACE(point);
    PairDirs dirs("replica_" + point.substr(point.rfind('.') + 1));
    auto primary = MustOpen(PrimaryOptions(dirs));
    ASSERT_EQ(CommitBatch(primary.get(), 0, 30), 30);

    {
      auto replica = MustOpen(ReplicaOptions(dirs));
      fault::CrashPoint crash(replica.get(), point);
      Status s = replica->replica_applier()->RunOnce();
      ASSERT_TRUE(crash.fired()) << "workload never reached " << point;
      ASSERT_FALSE(s.ok()) << "injected crash must fail the pass";
    }  // "kill -9": discard the handle mid-replay.

    auto replica = MustOpen(ReplicaOptions(dirs));
    ASSERT_TRUE(replica->replica_applier()->RunOnce().ok())
        << replica->replica_applier()->last_error();
    EXPECT_EQ(Materialize(primary.get()), Materialize(replica.get()));
  }
}

TEST(ReplicationCrash, PrimaryDiesAtEachPointWhileReplicaTails) {
  // Round-robin every named crash point on the primary while a replica
  // tails between failures: after each primary recovery the pair must agree
  // and the replica's cursor must keep advancing monotonically.
  for (const std::string& point : fault::AllCrashPoints()) {
    SCOPED_TRACE(point);
    PairDirs dirs("primary_" + point.substr(point.rfind('.') + 1));
    auto replica = MustOpen(ReplicaOptions(dirs));

    int seq = 0;
    for (int round = 0; round < 2; ++round) {
      auto primary = MustOpen(PrimaryOptions(dirs));
      fault::CrashPoint crash(primary.get(), point, /*fire_on_hit=*/2);
      for (int i = 0; i < 120 && !crash.fired(); ++i) {
        auto txn = primary->Begin();
        auto id = txn->CreateNode(
            {"Item"}, {{"seq", PropertyValue(int64_t{seq})}});
        if (id.ok() && txn->Commit().ok()) ++seq;
        if (i % 5 == 4) (void)primary->Checkpoint();
        if (i % 3 == 2) {
          // Tail the live primary mid-round, torn tail and all.
          ASSERT_TRUE(replica->replica_applier()->RunOnce().ok())
              << replica->replica_applier()->last_error();
        }
      }
      ASSERT_TRUE(crash.fired()) << "workload never reached " << point;
      primary.reset();  // "kill -9" the primary at the injected point.

      // The primary recovers; the replica ships the surviving history and
      // the two views must be identical (publication hints let the replica
      // hop over any commit timestamp the crash abandoned).
      auto recovered = MustOpen(PrimaryOptions(dirs));
      ASSERT_TRUE(replica->replica_applier()->RunOnce().ok())
          << replica->replica_applier()->last_error();
      EXPECT_EQ(Materialize(recovered.get()), Materialize(replica.get()));
    }
    ASSERT_GT(seq, 0) << "no commit ever succeeded";
  }
}

TEST(ReplicationCrash, BothSidesRestartRepeatedlyUnderChurn) {
  // Interleaved restarts of both sides with ongoing writes: the invariant
  // is always the same — after one catch-up pass, replica state == primary
  // state, regardless of who died when.
  PairDirs dirs("churn");
  int seq = 0;
  for (int round = 0; round < 4; ++round) {
    auto primary = MustOpen(PrimaryOptions(dirs));
    seq += CommitBatch(primary.get(), seq, 15);
    {
      auto replica = MustOpen(ReplicaOptions(dirs));
      ASSERT_TRUE(replica->replica_applier()->RunOnce().ok());
      EXPECT_EQ(Materialize(primary.get()), Materialize(replica.get()));
    }
    ASSERT_TRUE(primary->Checkpoint().ok());
  }
  auto primary = MustOpen(PrimaryOptions(dirs));
  auto replica = MustOpen(ReplicaOptions(dirs));
  ASSERT_TRUE(replica->replica_applier()->RunOnce().ok());
  EXPECT_EQ(Materialize(primary.get()), Materialize(replica.get()));
  ASSERT_EQ(seq, 60);
}

}  // namespace
}  // namespace neosi
