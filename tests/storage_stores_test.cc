// DynamicStore, PropertyStore and TokenStore behaviour.

#include <gtest/gtest.h>

#include "common/coding.h"
#include "storage/dynamic_store.h"
#include "storage/property_store.h"
#include "storage/token_store.h"

namespace neosi {
namespace {

TEST(DynamicStore, SmallBlobSingleBlock) {
  DynamicStore store(std::make_unique<InMemoryFile>());
  ASSERT_TRUE(store.Open().ok());
  auto head = store.WriteBlob(Slice("hello"));
  ASSERT_TRUE(head.ok());
  std::string out;
  ASSERT_TRUE(store.ReadBlob(*head, &out).ok());
  EXPECT_EQ(out, "hello");
}

TEST(DynamicStore, EmptyBlob) {
  DynamicStore store(std::make_unique<InMemoryFile>());
  ASSERT_TRUE(store.Open().ok());
  auto head = store.WriteBlob(Slice(""));
  ASSERT_TRUE(head.ok());
  std::string out = "junk";
  ASSERT_TRUE(store.ReadBlob(*head, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(DynamicStore, LargeBlobChains) {
  DynamicStore store(std::make_unique<InMemoryFile>());
  ASSERT_TRUE(store.Open().ok());
  std::string blob;
  for (int i = 0; i < 5000; ++i) blob.push_back(static_cast<char>(i * 31));
  auto head = store.WriteBlob(Slice(blob));
  ASSERT_TRUE(head.ok());
  std::string out;
  ASSERT_TRUE(store.ReadBlob(*head, &out).ok());
  EXPECT_EQ(out, blob);
  // Blocks used: ceil(5000/54) = 93.
  EXPECT_GE(store.Stats().high_id, 93u);
}

TEST(DynamicStore, FreeReturnsAllBlocks) {
  DynamicStore store(std::make_unique<InMemoryFile>());
  ASSERT_TRUE(store.Open().ok());
  auto head = store.WriteBlob(Slice(std::string(500, 'x')));
  ASSERT_TRUE(head.ok());
  const uint64_t used = store.Stats().high_id - store.Stats().free_records;
  ASSERT_TRUE(store.FreeBlob(*head).ok());
  EXPECT_EQ(store.Stats().free_records, used);
  std::string out;
  EXPECT_FALSE(store.ReadBlob(*head, &out).ok());
}

PropertyStore MakePropStore() {
  return PropertyStore(std::make_unique<InMemoryFile>(),
                       std::make_unique<InMemoryFile>());
}

TEST(PropertyStore, EmptyChain) {
  auto store = MakePropStore();
  ASSERT_TRUE(store.Open().ok());
  auto head = store.WriteChain({});
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(*head, kInvalidPropId);
  PropertyMap out;
  ASSERT_TRUE(store.ReadChain(kInvalidPropId, &out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(store.FreeChain(kInvalidPropId).ok());
}

TEST(PropertyStore, MixedValuesRoundTrip) {
  auto store = MakePropStore();
  ASSERT_TRUE(store.Open().ok());
  PropertyMap props;
  props[1] = PropertyValue(int64_t{42});
  props[2] = PropertyValue("short");
  props[3] = PropertyValue(std::string(300, 'q'));  // Spills to dynamic.
  props[4] = PropertyValue(true);
  props[5] = PropertyValue(2.75);
  props[6] = PropertyValue();
  auto head = store.WriteChain(props);
  ASSERT_TRUE(head.ok());
  PropertyMap out;
  ASSERT_TRUE(store.ReadChain(*head, &out).ok());
  EXPECT_EQ(out, props);
}

TEST(PropertyStore, FreeChainReleasesOverflow) {
  auto store = MakePropStore();
  ASSERT_TRUE(store.Open().ok());
  PropertyMap props;
  props[1] = PropertyValue(std::string(500, 'x'));
  auto head = store.WriteChain(props);
  ASSERT_TRUE(head.ok());
  EXPECT_GT(store.DynStats().high_id, 0u);
  ASSERT_TRUE(store.FreeChain(*head).ok());
  EXPECT_EQ(store.PropStats().free_records, store.PropStats().high_id);
  EXPECT_EQ(store.DynStats().free_records, store.DynStats().high_id);
}

TEST(TokenStore, GetOrCreateInternsNames) {
  TokenStore store(std::make_unique<InMemoryFile>(), "tokens");
  ASSERT_TRUE(store.Open().ok());
  auto a = store.GetOrCreate("Person", 10);
  auto b = store.GetOrCreate("Robot", 20);
  auto a2 = store.GetOrCreate("Person", 30);
  ASSERT_TRUE(a.ok() && b.ok() && a2.ok());
  EXPECT_EQ(*a, *a2);  // Interned; creation ts unchanged.
  EXPECT_NE(*a, *b);
  EXPECT_EQ(*store.CreatedTs(*a), 10u);
  EXPECT_EQ(*store.NameOf(*b), "Robot");
  EXPECT_EQ(store.size(), 2u);
}

TEST(TokenStore, SnapshotVisibility) {
  TokenStore store(std::make_unique<InMemoryFile>(), "tokens");
  ASSERT_TRUE(store.Open().ok());
  auto id = store.GetOrCreate("Late", 100);
  ASSERT_TRUE(id.ok());
  // §4: reader with an older snapshot discards the token.
  EXPECT_TRUE(store.Lookup("Late", 99).status().IsNotFound());
  EXPECT_TRUE(store.Lookup("Late", 100).ok());
  EXPECT_TRUE(store.Lookup("Late").ok());
  EXPECT_FALSE(store.VisibleAt(*id, 50));
  EXPECT_TRUE(store.VisibleAt(*id, 200));
  EXPECT_EQ(store.VisibleTokens(99).size(), 0u);
  EXPECT_EQ(store.VisibleTokens(100).size(), 1u);
}

TEST(TokenStore, RejectsBadNames) {
  TokenStore store(std::make_unique<InMemoryFile>(), "tokens");
  ASSERT_TRUE(store.Open().ok());
  EXPECT_TRUE(store.GetOrCreate("", 1).status().IsInvalidArgument());
  EXPECT_TRUE(store.GetOrCreate(std::string(100, 'x'), 1)
                  .status()
                  .IsInvalidArgument());
  // Max-length name is fine.
  EXPECT_TRUE(store.GetOrCreate(std::string(54, 'x'), 1).ok());
}

TEST(TokenStore, PersistsAcrossReopen) {
  auto file = std::make_unique<InMemoryFile>();
  InMemoryFile* raw = file.get();
  uint32_t person_id;
  std::string bytes;
  {
    TokenStore store(std::move(file), "tokens");
    ASSERT_TRUE(store.Open().ok());
    person_id = *store.GetOrCreate("Person", 7);
    ASSERT_TRUE(store.GetOrCreate("Robot", 8).ok());
    bytes.resize(raw->Size());
    ASSERT_TRUE(raw->ReadAt(0, bytes.size(), bytes.data()).ok());
  }
  auto file2 = std::make_unique<InMemoryFile>();
  ASSERT_TRUE(file2->WriteAt(0, bytes.data(), bytes.size()).ok());
  TokenStore reopened(std::move(file2), "tokens");
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.size(), 2u);
  EXPECT_EQ(*reopened.Lookup("Person"), person_id);
  EXPECT_EQ(*reopened.CreatedTs(person_id), 7u);
}

TEST(TokenStore, UnknownLookupsFail) {
  TokenStore store(std::make_unique<InMemoryFile>(), "tokens");
  ASSERT_TRUE(store.Open().ok());
  EXPECT_TRUE(store.Lookup("nope").status().IsNotFound());
  EXPECT_TRUE(store.NameOf(42).status().IsNotFound());
  EXPECT_TRUE(store.CreatedTs(42).status().IsNotFound());
}

}  // namespace
}  // namespace neosi
