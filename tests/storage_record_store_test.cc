// RecordStore: allocation, recycling, persistence, header validation.

#include <gtest/gtest.h>

#include "common/coding.h"
#include "storage/record_store.h"
#include "storage/records.h"

namespace neosi {
namespace {

constexpr uint32_t kTestMagic = 0x54455354;  // "TEST"
constexpr uint32_t kRecSize = 32;

std::unique_ptr<RecordStore> MakeStore() {
  auto store = std::make_unique<RecordStore>(
      std::make_unique<InMemoryFile>(), kRecSize, kTestMagic, "test-store");
  EXPECT_TRUE(store->Open().ok());
  return store;
}

std::string MakeRecord(char fill) {
  std::string rec(kRecSize, fill);
  rec[0] = static_cast<char>(kRecordInUse);
  return rec;
}

TEST(RecordStore, AllocateSequentialIds) {
  auto store = MakeStore();
  for (uint64_t i = 0; i < 10; ++i) {
    auto id = store->Allocate();
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, i);
  }
  EXPECT_EQ(store->high_id(), 10u);
}

TEST(RecordStore, WriteReadRoundTrip) {
  auto store = MakeStore();
  const uint64_t id = *store->Allocate();
  const std::string rec = MakeRecord('x');
  ASSERT_TRUE(store->Write(id, Slice(rec)).ok());
  std::string out;
  ASSERT_TRUE(store->Read(id, &out).ok());
  EXPECT_EQ(out, rec);
  EXPECT_TRUE(store->InUse(id));
}

TEST(RecordStore, WriteWrongSizeRejected) {
  auto store = MakeStore();
  const uint64_t id = *store->Allocate();
  EXPECT_TRUE(store->Write(id, Slice("short")).IsInvalidArgument());
}

TEST(RecordStore, OutOfRangeAccessRejected) {
  auto store = MakeStore();
  std::string out;
  EXPECT_TRUE(store->Read(99, &out).IsOutOfRange());
  EXPECT_TRUE(store->Write(99, Slice(MakeRecord('x'))).IsOutOfRange());
  EXPECT_TRUE(store->Free(99).IsOutOfRange());
  EXPECT_FALSE(store->InUse(99));
}

TEST(RecordStore, FreeRecyclesIds) {
  auto store = MakeStore();
  const uint64_t a = *store->Allocate();
  const uint64_t b = *store->Allocate();
  ASSERT_TRUE(store->Write(a, Slice(MakeRecord('a'))).ok());
  ASSERT_TRUE(store->Write(b, Slice(MakeRecord('b'))).ok());
  ASSERT_TRUE(store->Free(a).ok());
  EXPECT_FALSE(store->InUse(a));
  const uint64_t c = *store->Allocate();
  EXPECT_EQ(c, a);  // Recycled.
  // Recycled record is zeroed.
  std::string out;
  ASSERT_TRUE(store->Read(c, &out).ok());
  EXPECT_EQ(out, std::string(kRecSize, '\0'));
}

TEST(RecordStore, ForEachSkipsFreeRecords) {
  auto store = MakeStore();
  for (int i = 0; i < 5; ++i) {
    const uint64_t id = *store->Allocate();
    ASSERT_TRUE(store->Write(id, Slice(MakeRecord('x'))).ok());
  }
  ASSERT_TRUE(store->Free(2).ok());
  std::vector<uint64_t> seen;
  ASSERT_TRUE(store
                  ->ForEach([&](uint64_t id, const std::string&) {
                    seen.push_back(id);
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(seen, (std::vector<uint64_t>{0, 1, 3, 4}));
}

TEST(RecordStore, ReopenRebuildsFreeListAndHighId) {
  auto file = std::make_unique<InMemoryFile>();
  InMemoryFile* raw = file.get();
  std::string bytes;
  {
    RecordStore store(std::move(file), kRecSize, kTestMagic, "test");
    ASSERT_TRUE(store.Open().ok());
    for (int i = 0; i < 6; ++i) {
      const uint64_t id = *store.Allocate();
      ASSERT_TRUE(store.Write(id, Slice(MakeRecord('x'))).ok());
    }
    ASSERT_TRUE(store.Free(1).ok());
    ASSERT_TRUE(store.Free(4).ok());
    // Snapshot the backing buffer (the store owns and destroys the file).
    bytes.resize(raw->Size());
    ASSERT_TRUE(raw->ReadAt(0, bytes.size(), bytes.data()).ok());
  }
  auto file2 = std::make_unique<InMemoryFile>();
  ASSERT_TRUE(file2->WriteAt(0, bytes.data(), bytes.size()).ok());

  RecordStore reopened(std::move(file2), kRecSize, kTestMagic, "test");
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.high_id(), 6u);
  EXPECT_EQ(reopened.Stats().free_records, 2u);
  // Freed ids are handed out again.
  auto a = *reopened.Allocate();
  auto b = *reopened.Allocate();
  EXPECT_TRUE((a == 1 && b == 4) || (a == 4 && b == 1));
}

TEST(RecordStore, BadMagicRejectedOnOpen) {
  auto file = std::make_unique<InMemoryFile>();
  InMemoryFile* raw = file.get();
  std::string bytes;
  {
    RecordStore store(std::move(file), kRecSize, kTestMagic, "test");
    ASSERT_TRUE(store.Open().ok());
    bytes.resize(raw->Size());
    ASSERT_TRUE(raw->ReadAt(0, bytes.size(), bytes.data()).ok());
  }
  auto file2 = std::make_unique<InMemoryFile>();
  ASSERT_TRUE(file2->WriteAt(0, bytes.data(), bytes.size()).ok());
  RecordStore wrong(std::move(file2), kRecSize, 0xBADBAD, "test");
  EXPECT_TRUE(wrong.Open().IsCorruption());
}

TEST(RecordStore, RecordSizeMismatchRejectedOnOpen) {
  auto file = std::make_unique<InMemoryFile>();
  InMemoryFile* raw = file.get();
  std::string bytes;
  {
    RecordStore store(std::move(file), kRecSize, kTestMagic, "test");
    ASSERT_TRUE(store.Open().ok());
    bytes.resize(raw->Size());
    ASSERT_TRUE(raw->ReadAt(0, bytes.size(), bytes.data()).ok());
  }
  auto file2 = std::make_unique<InMemoryFile>();
  ASSERT_TRUE(file2->WriteAt(0, bytes.data(), bytes.size()).ok());
  RecordStore wrong(std::move(file2), kRecSize * 2, kTestMagic, "test");
  EXPECT_TRUE(wrong.Open().IsCorruption());
}

TEST(RecordStore, EnsureAllocatedExtendsAndFillsGaps) {
  auto store = MakeStore();
  ASSERT_TRUE(store->EnsureAllocated(5).ok());
  EXPECT_EQ(store->high_id(), 6u);
  // Ids 0..4 went to the free list; 5 is reserved.
  EXPECT_EQ(store->Stats().free_records, 5u);
  ASSERT_TRUE(store->Write(5, Slice(MakeRecord('x'))).ok());
  // EnsureAllocated of an id on the free list pulls it off.
  ASSERT_TRUE(store->EnsureAllocated(3).ok());
  for (int i = 0; i < 4; ++i) {
    auto id = store->Allocate();
    ASSERT_TRUE(id.ok());
    EXPECT_NE(*id, 3u);
    EXPECT_NE(*id, 5u);
  }
}

TEST(RecordStore, WriteField64TargetsExactBytes) {
  auto store = MakeStore();
  const uint64_t id = *store->Allocate();
  ASSERT_TRUE(store->Write(id, Slice(MakeRecord('a'))).ok());
  ASSERT_TRUE(store->WriteField64(id, 8, 0x1122334455667788ULL).ok());
  std::string out;
  ASSERT_TRUE(store->Read(id, &out).ok());
  // Bytes outside [8, 16) untouched.
  EXPECT_EQ(out[7], 'a');
  EXPECT_EQ(out[16], 'a');
  uint64_t v;
  memcpy(&v, out.data() + 8, 8);
  EXPECT_EQ(v, 0x1122334455667788ULL);
  // Out-of-record offset rejected.
  EXPECT_TRUE(store->WriteField64(id, kRecSize - 4, 1).IsInvalidArgument());
}

TEST(RecordStoreRecords, NodeRecordRoundTrip) {
  NodeRecord rec;
  rec.in_use = true;
  rec.deleted = true;
  rec.first_rel = 77;
  rec.first_prop = 88;
  rec.inline_labels = {1, 2, kEmptyLabelSlot};
  rec.label_overflow = 99;
  rec.commit_ts = 123456;
  char buf[NodeRecord::kSize];
  rec.EncodeTo(buf);
  NodeRecord out;
  ASSERT_TRUE(NodeRecord::DecodeFrom(Slice(buf, sizeof buf), &out).ok());
  EXPECT_TRUE(out.in_use);
  EXPECT_TRUE(out.deleted);
  EXPECT_EQ(out.first_rel, 77u);
  EXPECT_EQ(out.first_prop, 88u);
  EXPECT_EQ(out.inline_labels[0], 1u);
  EXPECT_EQ(out.inline_labels[2], kEmptyLabelSlot);
  EXPECT_EQ(out.label_overflow, 99u);
  EXPECT_EQ(out.commit_ts, 123456u);
}

TEST(RecordStoreRecords, RelationshipRecordRoundTrip) {
  RelationshipRecord rec;
  rec.in_use = true;
  rec.src = 5;
  rec.dst = 9;
  rec.type = 3;
  rec.src_prev = 11;
  rec.src_next = 12;
  rec.dst_prev = 13;
  rec.dst_next = 14;
  rec.first_prop = 15;
  rec.commit_ts = 16;
  char buf[RelationshipRecord::kSize];
  rec.EncodeTo(buf);
  RelationshipRecord out;
  ASSERT_TRUE(
      RelationshipRecord::DecodeFrom(Slice(buf, sizeof buf), &out).ok());
  EXPECT_EQ(out.src, 5u);
  EXPECT_EQ(out.dst, 9u);
  EXPECT_EQ(out.type, 3u);
  EXPECT_EQ(out.src_prev, 11u);
  EXPECT_EQ(out.src_next, 12u);
  EXPECT_EQ(out.dst_prev, 13u);
  EXPECT_EQ(out.dst_next, 14u);
  EXPECT_EQ(out.first_prop, 15u);
  EXPECT_EQ(out.commit_ts, 16u);
  // Chain navigation helpers.
  EXPECT_EQ(out.NextFor(5), 12u);
  EXPECT_EQ(out.NextFor(9), 14u);
  EXPECT_EQ(out.PrevFor(5), 11u);
  EXPECT_EQ(out.PrevFor(9), 13u);
}

TEST(RecordStoreRecords, PointerFieldOffsetsMatchLayout) {
  RelationshipRecord rec;
  rec.in_use = true;
  rec.src_prev = 0xAAAA;
  rec.src_next = 0xBBBB;
  rec.dst_prev = 0xCCCC;
  rec.dst_next = 0xDDDD;
  char buf[RelationshipRecord::kSize];
  rec.EncodeTo(buf);
  EXPECT_EQ(DecodeFixed64(buf + RelationshipRecord::kSrcPrevOffset), 0xAAAAu);
  EXPECT_EQ(DecodeFixed64(buf + RelationshipRecord::kSrcNextOffset), 0xBBBBu);
  EXPECT_EQ(DecodeFixed64(buf + RelationshipRecord::kDstPrevOffset), 0xCCCCu);
  EXPECT_EQ(DecodeFixed64(buf + RelationshipRecord::kDstNextOffset), 0xDDDDu);
}

}  // namespace
}  // namespace neosi
