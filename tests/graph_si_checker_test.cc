// Black-box snapshot-isolation history checking over the EMBEDDED API:
// record multi-threaded read/write histories — txn id, snapshot timestamp,
// commit timestamp, read set, write set — and verify the SI axioms (and,
// under kSerializable, DSG acyclicity) from the recorded history alone.
// The checkers themselves live in si_checker.h, shared with the wire-level
// suite (server_si_checker_test.cc) which records the same histories
// through socket clients.
//
// With PR 1's staged commit pipeline (parallel application, out-of-order
// completion, ordered publication) and the asynchronous watermark-paced GC
// racing the workload, these axioms are exactly the contract the engine
// must keep.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "common/random.h"
#include "fault_injection.h"
#include "graph/graph_database.h"
#include "si_checker.h"

namespace neosi {
namespace {

using sichecker::DsgChecker;
using sichecker::MakeValue;
using sichecker::SiHistoryChecker;
using sichecker::TxnRecord;


/// Runs `threads` workers for `txns_per_thread` transactions each over
/// `keys`, recording complete histories. A fraction of transactions abort
/// deliberately (their writes must never be read), and a fraction issue an
/// intermediate write (overwritten before commit; must never be read).
/// `thread_offset` shifts the value-encoding thread ids so that several
/// history batches over one database (e.g. before and after a crash
/// recovery) never collide on values. Under kSerializable a transaction may
/// additionally abort with SerializationFailure at any step; it is simply
/// recorded as aborted (the DSG checker below only examines committed
/// transactions).
std::vector<TxnRecord> RecordHistory(
    GraphDatabase& db, const std::vector<NodeId>& keys, int threads,
    int txns_per_thread, int thread_offset = 0,
    IsolationLevel isolation = IsolationLevel::kSnapshotIsolation) {
  std::mutex history_mu;
  std::vector<TxnRecord> history;
  std::vector<std::thread> workers;
  for (int worker = 0; worker < threads; ++worker) {
    workers.emplace_back([&, t = worker + thread_offset] {
      std::vector<TxnRecord> local;
      Random rng(t * 6151 + 17);
      for (int i = 0; i < txns_per_thread; ++i) {
        auto txn = db.Begin(isolation);
        TxnRecord rec;
        rec.id = txn->id();
        rec.snapshot_ts = txn->start_ts();

        // Read 1-3 keys first (before any own write), then write 1-2.
        const int reads = 1 + static_cast<int>(rng.Uniform(3));
        bool failed = false;
        for (int r = 0; r < reads && !failed; ++r) {
          const NodeId key = keys[rng.Uniform(keys.size())];
          if (rec.reads.count(key)) continue;
          auto value = txn->GetNodeProperty(key, "v");
          if (!value.ok()) {
            failed = true;
            break;
          }
          rec.reads[key] = value->AsInt();
        }
        const int writes = 1 + static_cast<int>(rng.Uniform(2));
        for (int w = 0; w < writes && !failed; ++w) {
          const NodeId key = keys[rng.Uniform(keys.size())];
          if (rng.Uniform(8) == 0) {
            // Intermediate write, overwritten below: invisible to everyone.
            const int64_t tmp = MakeValue(t, i, 99);
            if (!txn->SetNodeProperty(key, "v", PropertyValue(tmp)).ok()) {
              failed = true;
              break;
            }
            rec.intermediate_writes.push_back(tmp);
          }
          const int64_t value = MakeValue(t, i, w);
          if (!txn->SetNodeProperty(key, "v", PropertyValue(value)).ok()) {
            failed = true;
            break;
          }
          rec.writes[key] = value;
        }

        if (failed || !txn->IsActive()) {
          // Conflict abort: the engine already rolled back.
          rec.committed = false;
        } else if (rng.Uniform(10) == 0) {
          txn->Abort();
          rec.committed = false;
        } else {
          Status s = txn->Commit();
          rec.committed = s.ok();
          rec.commit_ts = txn->commit_ts();
        }
        local.push_back(std::move(rec));
      }
      std::lock_guard<std::mutex> guard(history_mu);
      for (auto& rec : local) history.push_back(std::move(rec));
    });
  }
  for (auto& t : workers) t.join();
  return history;
}

std::unique_ptr<GraphDatabase> OpenDb(uint64_t gc_interval_ms,
                                      uint64_t gc_backlog_threshold,
                                      size_t gc_shards = 4) {
  DatabaseOptions options;
  options.in_memory = true;
  options.background_gc_interval_ms = gc_interval_ms;
  options.gc_backlog_threshold = gc_backlog_threshold;
  options.gc_shards = gc_shards;
  auto db = GraphDatabase::Open(options);
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(*db);
}

/// Seeds the counters and returns (keys, the setup record): the setup
/// transaction participates in the history so initial reads attribute.
std::pair<std::vector<NodeId>, TxnRecord> Seed(GraphDatabase& db, int keys) {
  std::vector<NodeId> out;
  auto txn = db.Begin();
  TxnRecord rec;
  rec.id = txn->id();
  rec.snapshot_ts = txn->start_ts();
  for (int i = 0; i < keys; ++i) {
    const NodeId id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    rec.writes[id] = 0;
    out.push_back(id);
  }
  EXPECT_TRUE(txn->Commit().ok());
  rec.committed = true;
  rec.commit_ts = txn->commit_ts();
  return {out, rec};
}

// ---------------------------------------------------------------------------
// The suite
// ---------------------------------------------------------------------------

TEST(SiChecker, MultiThreadedHistoryIsSnapshotIsolated) {
  // GC daemon racing the workload: interval + nudges, the PR's default path.
  auto db = OpenDb(/*gc_interval_ms=*/1, /*gc_backlog_threshold=*/8);
  auto [keys, seed] = Seed(*db, 8);
  auto history = RecordHistory(*db, keys, /*threads=*/4,
                               /*txns_per_thread=*/200);
  history.push_back(seed);

  size_t committed = 0;
  for (const auto& rec : history) committed += rec.committed ? 1 : 0;
  ASSERT_GT(committed, 100u) << "workload too contended to be meaningful";

  SiHistoryChecker checker(std::move(history));
  const auto violations = checker.Check();
  for (const auto& v : violations) ADD_FAILURE() << v;
  EXPECT_TRUE(violations.empty());
}

// The SI axioms must hold while EIGHT per-shard drain workers reclaim
// concurrently with the workload: sharded drains prune different entities'
// chains in parallel, so any watermark bug (a shard draining past a live
// snapshot) would surface as a stale or impossible read in the history.
TEST(SiChecker, ShardedGcDrainHistoryIsSnapshotIsolated) {
  auto db = OpenDb(/*gc_interval_ms=*/1, /*gc_backlog_threshold=*/4,
                   /*gc_shards=*/8);
  ASSERT_EQ(db->gc_daemon()->worker_count(), 8u);
  auto [keys, seed] = Seed(*db, 16);  // Keys spread across every shard.
  auto history = RecordHistory(*db, keys, /*threads=*/4,
                               /*txns_per_thread=*/200);
  history.push_back(seed);

  size_t committed = 0;
  for (const auto& rec : history) committed += rec.committed ? 1 : 0;
  ASSERT_GT(committed, 100u) << "workload too contended to be meaningful";

  SiHistoryChecker checker(std::move(history));
  const auto violations = checker.Check();
  for (const auto& v : violations) ADD_FAILURE() << v;
  EXPECT_TRUE(violations.empty());
  // The workers really did reclaim during the run.
  EXPECT_GT(db->gc_daemon()->versions_pruned(), 0u);
}

TEST(SiChecker, HighContentionSingleKeyHistoryIsSnapshotIsolated) {
  // One hot key maximizes write-write conflicts and GC churn on one chain.
  auto db = OpenDb(/*gc_interval_ms=*/1, /*gc_backlog_threshold=*/4);
  auto [keys, seed] = Seed(*db, 1);
  auto history = RecordHistory(*db, keys, /*threads=*/4,
                               /*txns_per_thread=*/150);
  history.push_back(seed);

  SiHistoryChecker checker(std::move(history));
  const auto violations = checker.Check();
  for (const auto& v : violations) ADD_FAILURE() << v;
  EXPECT_TRUE(violations.empty());
}

// The SI axioms must survive the full durability stack: a multi-threaded
// history recorded while the WAL rotates through many segments and the
// checkpoint daemon truncates concurrently, then a crash injected MID-
// ROTATION (at the segment-creation crash point), recovery, and a second
// history on the recovered store. The recovery itself participates in the
// checked history as a read-only transaction: its reads must be the newest
// committed writes — exactly recovery exactness, phrased as axiom A2.
TEST(SiChecker, HistorySpansRotationDaemonCheckpointAndMidRotationCrash) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() /
                       ("neosi_si_rotation_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);

  DatabaseOptions options;
  options.in_memory = false;
  options.path = dir.string();
  options.background_gc_interval_ms = 1;
  options.gc_backlog_threshold = 8;
  options.checkpoint_interval_ms = 1;
  options.checkpoint_wal_threshold = 512;
  options.wal_segment_size = 512;  // Rotation every few commits.
  options.wal_recycle_segments = 1;

  std::vector<TxnRecord> history;
  std::vector<NodeId> keys;
  {
    auto opened = GraphDatabase::Open(options);
    ASSERT_TRUE(opened.ok()) << opened.status();
    auto db = std::move(*opened);
    auto [seeded_keys, seed] = Seed(*db, 6);
    keys = seeded_keys;
    history.push_back(seed);

    auto recorded = RecordHistory(*db, keys, /*threads=*/4,
                                  /*txns_per_thread=*/150);
    for (auto& rec : recorded) history.push_back(std::move(rec));

    // The workload really did span rotation and concurrent checkpoints.
    const DatabaseStats stats = db->Stats();
    ASSERT_GT(stats.store.wal_segments_created, 1u);
    ASSERT_GE(stats.store.checkpoint_markers + stats.store.checkpoints, 1u);

    // Crash in the middle of a segment rotation: arm the post-create crash
    // point and commit until it fires (the doomed commit fails exactly as
    // if the process died with the new segment created but unused).
    fault::CrashPoint crash(db.get(), "wal.segment.post_create");
    for (int i = 0; i < 400 && !crash.fired(); ++i) {
      auto txn = db->Begin(IsolationLevel::kSnapshotIsolation);
      TxnRecord rec;
      rec.id = txn->id();
      rec.snapshot_ts = txn->start_ts();
      const NodeId key = keys[static_cast<size_t>(i) % keys.size()];
      const int64_t value = MakeValue(/*thread=*/8, /*seq=*/i);
      ASSERT_TRUE(txn->SetNodeProperty(key, "v", PropertyValue(value)).ok());
      Status s = txn->Commit();
      rec.committed = s.ok();
      if (s.ok()) {
        rec.commit_ts = txn->commit_ts();
        rec.writes[key] = value;
      } else {
        // Died at the crash point before its record reached the log: the
        // write must never be observed.
        rec.writes[key] = value;
      }
      history.push_back(std::move(rec));
    }
    ASSERT_TRUE(crash.fired()) << "rotation crash point never reached";
    // Kill: destroy the database without any clean-shutdown work.
  }

  // Recover with daemons off (deterministic), read every key: the recovery
  // read joins the history as a read-only transaction and axiom A2 demands
  // it observe exactly the newest committed write per key.
  options.background_gc_interval_ms = 0;
  options.checkpoint_interval_ms = 0;
  auto opened = GraphDatabase::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status();
  auto db = std::move(*opened);
  {
    auto reader = db->Begin(IsolationLevel::kSnapshotIsolation);
    TxnRecord recovery_read;
    recovery_read.id = reader->id();
    recovery_read.snapshot_ts = reader->start_ts();
    recovery_read.committed = false;  // Read-only; reads still checked.
    for (NodeId key : keys) {
      auto value = reader->GetNodeProperty(key, "v");
      ASSERT_TRUE(value.ok());
      recovery_read.reads[key] = value->AsInt();
    }
    history.push_back(std::move(recovery_read));
  }

  // And the recovered store still produces SI histories (value space
  // shifted past every pre-crash writer's).
  auto post = RecordHistory(*db, keys, /*threads=*/2, /*txns_per_thread=*/50,
                            /*thread_offset=*/16);
  for (auto& rec : post) history.push_back(std::move(rec));

  SiHistoryChecker checker(std::move(history));
  const auto violations = checker.Check();
  for (const auto& v : violations) ADD_FAILURE() << v;
  EXPECT_TRUE(violations.empty());
  fs::remove_all(dir);
}

// A5: write skew — each transaction reads BOTH keys and writes the OTHER
// one. SI permits both to commit (disjoint write sets); the checker must
// accept the resulting history, because it is not an SI violation.
TEST(SiChecker, WriteSkewIsPermittedAndPassesTheChecker) {
  auto db = OpenDb(/*gc_interval_ms=*/50, /*gc_backlog_threshold=*/1024);
  auto [keys, seed] = Seed(*db, 2);
  const NodeId a = keys[0], b = keys[1];

  auto t1 = db->Begin(IsolationLevel::kSnapshotIsolation);
  auto t2 = db->Begin(IsolationLevel::kSnapshotIsolation);

  TxnRecord r1, r2;
  r1.id = t1->id();
  r1.snapshot_ts = t1->start_ts();
  r2.id = t2->id();
  r2.snapshot_ts = t2->start_ts();

  r1.reads[a] = t1->GetNodeProperty(a, "v")->AsInt();
  r1.reads[b] = t1->GetNodeProperty(b, "v")->AsInt();
  r2.reads[a] = t2->GetNodeProperty(a, "v")->AsInt();
  r2.reads[b] = t2->GetNodeProperty(b, "v")->AsInt();

  ASSERT_TRUE(t1->SetNodeProperty(a, "v", PropertyValue(int64_t{111})).ok());
  r1.writes[a] = 111;
  ASSERT_TRUE(t2->SetNodeProperty(b, "v", PropertyValue(int64_t{222})).ok());
  r2.writes[b] = 222;

  // Both commit: the classic SI anomaly.
  ASSERT_TRUE(t1->Commit().ok());
  r1.committed = true;
  r1.commit_ts = t1->commit_ts();
  ASSERT_TRUE(t2->Commit().ok());
  r2.committed = true;
  r2.commit_ts = t2->commit_ts();

  std::vector<TxnRecord> history{seed, r1, r2};
  SiHistoryChecker checker(std::move(history));
  const auto violations = checker.Check();
  for (const auto& v : violations) ADD_FAILURE() << v;
  EXPECT_TRUE(violations.empty());

  // And it really was write skew: each transaction read the other's key at
  // its pre-commit value while both overlapped.
  EXPECT_EQ(r1.reads.at(b), 0);
  EXPECT_EQ(r2.reads.at(a), 0);
}

// Checker self-test: a fabricated lost-update history MUST be rejected —
// otherwise the suite above proves nothing.
TEST(SiChecker, CheckerRejectsFabricatedLostUpdate) {
  TxnRecord w1, w2;
  w1.id = 1;
  w1.snapshot_ts = 10;
  w1.commit_ts = 20;
  w1.committed = true;
  w1.writes[7] = 100;
  w2.id = 2;
  w2.snapshot_ts = 15;  // Overlaps [10,20] and also writes key 7.
  w2.commit_ts = 25;
  w2.committed = true;
  w2.writes[7] = 200;
  SiHistoryChecker checker({w1, w2});
  EXPECT_FALSE(checker.Check().empty());
}

// Checker self-test: a stale read (older than the newest committed write at
// the snapshot) must be rejected.
TEST(SiChecker, CheckerRejectsFabricatedStaleRead) {
  TxnRecord w1, w2, r;
  w1.id = 1;
  w1.snapshot_ts = 1;
  w1.commit_ts = 2;
  w1.committed = true;
  w1.writes[7] = 100;
  w2.id = 2;
  w2.snapshot_ts = 3;
  w2.commit_ts = 4;
  w2.committed = true;
  w2.writes[7] = 200;
  r.id = 3;
  r.snapshot_ts = 5;  // Should see 200...
  r.committed = true;
  r.commit_ts = 6;
  r.reads[7] = 100;  // ...but observed the overwritten 100.
  SiHistoryChecker checker({w1, w2, r});
  EXPECT_FALSE(checker.Check().empty());
}

// Checker self-test: reading an aborted write must be rejected.
TEST(SiChecker, CheckerRejectsFabricatedAbortedRead) {
  TxnRecord w, r;
  w.id = 1;
  w.snapshot_ts = 1;
  w.committed = false;  // Aborted.
  w.writes[7] = 100;
  r.id = 2;
  r.snapshot_ts = 5;
  r.committed = true;
  r.commit_ts = 6;
  r.reads[7] = 100;
  SiHistoryChecker checker({w, r});
  EXPECT_FALSE(checker.Check().empty());
}


// Recorded kSerializable histories must be FULLY serializable (DSG acyclic)
// on top of satisfying every SI axiom — with the GC daemon racing the
// workload exactly like the SI suites above.
TEST(DsgChecker, SerializableHistoryIsFullySerializable) {
  auto db = OpenDb(/*gc_interval_ms=*/1, /*gc_backlog_threshold=*/8);
  auto [keys, seed] = Seed(*db, 8);
  auto history = RecordHistory(*db, keys, /*threads=*/4,
                               /*txns_per_thread=*/200, /*thread_offset=*/0,
                               IsolationLevel::kSerializable);
  history.push_back(seed);

  size_t committed = 0;
  for (const auto& rec : history) committed += rec.committed ? 1 : 0;
  ASSERT_GT(committed, 50u) << "workload too contended to be meaningful";

  SiHistoryChecker si_checker(history);
  for (const auto& v : si_checker.Check()) ADD_FAILURE() << v;

  DsgChecker dsg(std::move(history));
  const auto cycle = dsg.FindCycle();
  EXPECT_FALSE(cycle.has_value()) << *cycle;
}

// Same property on one hot key, where every transaction conflicts and the
// pivot/doomed abort machinery fires constantly.
TEST(DsgChecker, HighContentionSerializableHistoryIsFullySerializable) {
  auto db = OpenDb(/*gc_interval_ms=*/1, /*gc_backlog_threshold=*/4);
  auto [keys, seed] = Seed(*db, 2);
  auto history = RecordHistory(*db, keys, /*threads=*/4,
                               /*txns_per_thread=*/150, /*thread_offset=*/0,
                               IsolationLevel::kSerializable);
  history.push_back(seed);

  DsgChecker dsg(std::move(history));
  const auto cycle = dsg.FindCycle();
  EXPECT_FALSE(cycle.has_value()) << *cycle;

  // The tracker really was engaged.
  const DatabaseStats stats = db->Stats();
  EXPECT_GT(stats.ssi_tracked_txns, 0u);
}

// A LIVE write-skew history recorded under SI: the SI checker must accept
// it (axiom A5) while the DSG checker must reject it — the two checkers
// bracket exactly the gap between SI and full serializability.
TEST(DsgChecker, LiveSiWriteSkewCyclesInDsgButPassesSiChecker) {
  auto db = OpenDb(/*gc_interval_ms=*/50, /*gc_backlog_threshold=*/1024);
  auto [keys, seed] = Seed(*db, 2);
  const NodeId a = keys[0], b = keys[1];

  auto t1 = db->Begin(IsolationLevel::kSnapshotIsolation);
  auto t2 = db->Begin(IsolationLevel::kSnapshotIsolation);
  TxnRecord r1, r2;
  r1.id = t1->id();
  r1.snapshot_ts = t1->start_ts();
  r2.id = t2->id();
  r2.snapshot_ts = t2->start_ts();
  r1.reads[a] = t1->GetNodeProperty(a, "v")->AsInt();
  r1.reads[b] = t1->GetNodeProperty(b, "v")->AsInt();
  r2.reads[a] = t2->GetNodeProperty(a, "v")->AsInt();
  r2.reads[b] = t2->GetNodeProperty(b, "v")->AsInt();
  ASSERT_TRUE(t1->SetNodeProperty(a, "v", PropertyValue(int64_t{111})).ok());
  r1.writes[a] = 111;
  ASSERT_TRUE(t2->SetNodeProperty(b, "v", PropertyValue(int64_t{222})).ok());
  r2.writes[b] = 222;
  ASSERT_TRUE(t1->Commit().ok());
  r1.committed = true;
  r1.commit_ts = t1->commit_ts();
  ASSERT_TRUE(t2->Commit().ok());
  r2.committed = true;
  r2.commit_ts = t2->commit_ts();

  std::vector<TxnRecord> history{seed, r1, r2};
  SiHistoryChecker si_checker(history);
  EXPECT_TRUE(si_checker.Check().empty());
  DsgChecker dsg(std::move(history));
  EXPECT_TRUE(dsg.FindCycle().has_value());
}

// Checker self-test: the fabricated write-skew shape (each reads both keys,
// writes the other, disjoint write sets, overlapping intervals) passes
// every SI axiom yet must cycle: T1 -rw-> T2 -rw-> T1.
TEST(DsgChecker, CheckerDetectsFabricatedWriteSkewCycle) {
  TxnRecord seed, t1, t2;
  seed.id = 1;
  seed.snapshot_ts = 1;
  seed.commit_ts = 2;
  seed.committed = true;
  seed.writes[7] = 0;
  seed.writes[8] = 0;
  t1.id = 2;
  t1.snapshot_ts = 3;
  t1.commit_ts = 10;
  t1.committed = true;
  t1.reads[7] = 0;
  t1.reads[8] = 0;
  t1.writes[7] = 111;
  t2.id = 3;
  t2.snapshot_ts = 4;
  t2.commit_ts = 11;
  t2.committed = true;
  t2.reads[7] = 0;
  t2.reads[8] = 0;
  t2.writes[8] = 222;

  std::vector<TxnRecord> history{seed, t1, t2};
  SiHistoryChecker si_checker(history);
  EXPECT_TRUE(si_checker.Check().empty()) << "write skew IS SI-legal";
  DsgChecker dsg(std::move(history));
  EXPECT_TRUE(dsg.FindCycle().has_value());
}

// Checker self-test: the read-only transaction anomaly (ROAnom, the
// serializable-parallel.spec shape). T2 reads X,Y and later writes X; T1
// writes Y and commits first; read-only T3 then observes Y=20 but X=0.
// Every SI axiom holds, yet T2 -rw-> T1 -wr-> T3 -rw-> T2 must cycle.
TEST(DsgChecker, CheckerDetectsFabricatedReadOnlyAnomalyCycle) {
  TxnRecord seed, t1, t2, t3;
  seed.id = 1;
  seed.snapshot_ts = 1;
  seed.commit_ts = 2;
  seed.committed = true;
  seed.writes[7] = 0;  // X
  seed.writes[8] = 0;  // Y
  t2.id = 2;
  t2.snapshot_ts = 3;
  t2.commit_ts = 30;  // Commits LAST.
  t2.committed = true;
  t2.reads[7] = 0;
  t2.reads[8] = 0;
  t2.writes[7] = -11;
  t1.id = 3;
  t1.snapshot_ts = 4;
  t1.commit_ts = 10;
  t1.committed = true;
  t1.reads[8] = 0;
  t1.writes[8] = 20;
  t3.id = 4;  // Read-only: observes t1's commit but not t2's.
  t3.snapshot_ts = 15;
  t3.commit_ts = 16;
  t3.committed = true;
  t3.reads[7] = 0;
  t3.reads[8] = 20;

  std::vector<TxnRecord> history{seed, t1, t2, t3};
  SiHistoryChecker si_checker(history);
  EXPECT_TRUE(si_checker.Check().empty()) << "ROAnom IS SI-legal";
  DsgChecker dsg(std::move(history));
  EXPECT_TRUE(dsg.FindCycle().has_value());
}

// Checker self-test negative control: a genuinely serial history must NOT
// cycle (guards against a checker that rejects everything).
TEST(DsgChecker, CheckerAcceptsSerialHistory) {
  TxnRecord seed, t1, t2;
  seed.id = 1;
  seed.snapshot_ts = 1;
  seed.commit_ts = 2;
  seed.committed = true;
  seed.writes[7] = 0;
  t1.id = 2;
  t1.snapshot_ts = 3;
  t1.commit_ts = 4;
  t1.committed = true;
  t1.reads[7] = 0;
  t1.writes[7] = 100;
  t2.id = 3;
  t2.snapshot_ts = 5;
  t2.commit_ts = 6;
  t2.committed = true;
  t2.reads[7] = 100;
  t2.writes[7] = 200;

  DsgChecker dsg({seed, t1, t2});
  EXPECT_FALSE(dsg.FindCycle().has_value());
}

}  // namespace
}  // namespace neosi
