// Black-box snapshot-isolation history checker (in the spirit of "Efficient
// Black-box Checking of Snapshot Isolation in Databases"): record
// multi-threaded read/write histories — txn id, snapshot timestamp, commit
// timestamp, read set, write set — and verify the SI axioms from the
// recorded history alone:
//
//   A1  Committed reads: every value read was written by a COMMITTED
//       transaction's FINAL write (no aborted reads, no intermediate reads).
//   A2  Snapshot reads: the value read for a key is the newest committed
//       write with commit_ts <= the reader's snapshot timestamp (unless the
//       reader overwrote it itself first).
//   A3  No lost updates: two committed transactions writing the same key
//       never have overlapping [snapshot_ts, commit_ts] intervals.
//   A4  Commit order: commit timestamps are unique and a writer's commit is
//       after its snapshot.
//   A5  Write skew is PERMITTED: the one anomaly SI allows must survive the
//       checker — a history exhibiting it passes A1..A4.
//
// With PR 1's staged commit pipeline (parallel application, out-of-order
// completion, ordered publication) and this PR's asynchronous watermark-
// paced GC racing the workload, these axioms are exactly the contract the
// engine must keep.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "common/random.h"
#include "fault_injection.h"
#include "graph/graph_database.h"

namespace neosi {
namespace {

/// One recorded transaction: the checker sees nothing but this.
struct TxnRecord {
  TxnId id = kNoTxn;
  Timestamp snapshot_ts = kNoTimestamp;
  Timestamp commit_ts = kNoTimestamp;  // kNoTimestamp => aborted
  bool committed = false;
  /// key -> value observed by the FIRST read of the key (before any own
  /// write to it).
  std::map<NodeId, int64_t> reads;
  /// key -> FINAL value written (intermediate writes recorded separately).
  std::map<NodeId, int64_t> writes;
  /// Values written and then overwritten inside the same transaction; must
  /// never be observed by anyone (A1's "no intermediate reads").
  std::vector<int64_t> intermediate_writes;
};

/// Per-key index of committed writes, value -> writer.
struct CommittedWrite {
  Timestamp commit_ts = kNoTimestamp;
  int64_t value = 0;
};

class SiHistoryChecker {
 public:
  explicit SiHistoryChecker(std::vector<TxnRecord> history)
      : history_(std::move(history)) {}

  /// Runs every axiom; collects human-readable violations.
  std::vector<std::string> Check() {
    IndexCommittedWrites();
    CheckCommittedReads();     // A1
    CheckSnapshotReads();      // A2
    CheckNoLostUpdates();      // A3
    CheckCommitOrder();        // A4
    return violations_;
  }

 private:
  void Violation(const std::string& what) { violations_.push_back(what); }

  void IndexCommittedWrites() {
    for (const TxnRecord& txn : history_) {
      if (!txn.committed) continue;
      for (const auto& [key, value] : txn.writes) {
        writes_by_key_[key].push_back({txn.commit_ts, value});
        committed_values_[key].insert(value);
      }
      for (int64_t value : txn.intermediate_writes) {
        intermediate_values_.insert(value);
      }
    }
    for (const TxnRecord& txn : history_) {
      if (txn.committed) continue;
      for (const auto& [key, value] : txn.writes) {
        aborted_values_.insert(value);
      }
      for (int64_t value : txn.intermediate_writes) {
        aborted_values_.insert(value);
      }
    }
    for (auto& [key, writes] : writes_by_key_) {
      std::sort(writes.begin(), writes.end(),
                [](const CommittedWrite& a, const CommittedWrite& b) {
                  return a.commit_ts < b.commit_ts;
                });
    }
  }

  // A1: reads resolve to committed final writes only.
  void CheckCommittedReads() {
    for (const TxnRecord& txn : history_) {
      for (const auto& [key, value] : txn.reads) {
        if (aborted_values_.count(value)) {
          Violation("txn " + std::to_string(txn.id) + " read value " +
                    std::to_string(value) + " written by an ABORTED txn");
        }
        if (intermediate_values_.count(value)) {
          Violation("txn " + std::to_string(txn.id) + " read INTERMEDIATE " +
                    "value " + std::to_string(value));
        }
        auto it = committed_values_.find(key);
        if (it == committed_values_.end() || !it->second.count(value)) {
          if (!aborted_values_.count(value) &&
              !intermediate_values_.count(value)) {
            Violation("txn " + std::to_string(txn.id) + " read value " +
                      std::to_string(value) + " of key " +
                      std::to_string(key) + " that NOBODY committed");
          }
        }
      }
    }
  }

  // A2: each read returns the newest committed write at the snapshot.
  void CheckSnapshotReads() {
    for (const TxnRecord& txn : history_) {
      for (const auto& [key, value] : txn.reads) {
        auto it = writes_by_key_.find(key);
        if (it == writes_by_key_.end()) continue;
        const CommittedWrite* expected = nullptr;
        for (const CommittedWrite& write : it->second) {
          if (write.commit_ts <= txn.snapshot_ts) {
            expected = &write;
          } else {
            break;  // Sorted by commit_ts.
          }
        }
        if (expected == nullptr) continue;  // Initial state predates history.
        if (expected->value != value) {
          std::ostringstream msg;
          msg << "txn " << txn.id << " (snapshot " << txn.snapshot_ts
              << ") read key " << key << " = " << value
              << " but the newest committed write at its snapshot was "
              << expected->value << " (commit_ts " << expected->commit_ts
              << ")";
          Violation(msg.str());
        }
      }
    }
  }

  // A3: committed writers of one key never overlap.
  void CheckNoLostUpdates() {
    std::map<NodeId, std::vector<const TxnRecord*>> writers;
    for (const TxnRecord& txn : history_) {
      if (!txn.committed) continue;
      for (const auto& [key, value] : txn.writes) {
        writers[key].push_back(&txn);
      }
    }
    for (const auto& [key, txns] : writers) {
      for (size_t i = 0; i < txns.size(); ++i) {
        for (size_t j = i + 1; j < txns.size(); ++j) {
          const TxnRecord& a = *txns[i];
          const TxnRecord& b = *txns[j];
          const bool disjoint = a.commit_ts <= b.snapshot_ts ||
                                b.commit_ts <= a.snapshot_ts;
          if (!disjoint) {
            std::ostringstream msg;
            msg << "LOST UPDATE on key " << key << ": txns " << a.id
                << " [" << a.snapshot_ts << "," << a.commit_ts << "] and "
                << b.id << " [" << b.snapshot_ts << "," << b.commit_ts
                << "] overlap and both committed writes";
            Violation(msg.str());
          }
        }
      }
    }
  }

  // A4: unique commit timestamps, commit after snapshot.
  void CheckCommitOrder() {
    std::map<Timestamp, TxnId> seen;
    for (const TxnRecord& txn : history_) {
      if (!txn.committed) continue;
      if (txn.commit_ts == kNoTimestamp) {
        Violation("committed txn " + std::to_string(txn.id) +
                  " has no commit timestamp");
        continue;
      }
      if (txn.commit_ts <= txn.snapshot_ts) {
        Violation("txn " + std::to_string(txn.id) +
                  " committed at or before its snapshot");
      }
      auto [it, inserted] = seen.emplace(txn.commit_ts, txn.id);
      if (!inserted) {
        Violation("txns " + std::to_string(it->second) + " and " +
                  std::to_string(txn.id) + " share commit_ts " +
                  std::to_string(txn.commit_ts));
      }
    }
  }

  std::vector<TxnRecord> history_;
  std::vector<std::string> violations_;
  std::map<NodeId, std::vector<CommittedWrite>> writes_by_key_;
  std::map<NodeId, std::set<int64_t>> committed_values_;
  std::set<int64_t> aborted_values_;
  std::set<int64_t> intermediate_values_;
};

// ---------------------------------------------------------------------------
// History recording workload
// ---------------------------------------------------------------------------

/// Unique value encoding so every read can be attributed to its writer.
/// thread+1 keeps the result nonzero: 0 is the seed value and must never
/// collide with a workload write.
int64_t MakeValue(int thread, uint64_t seq, int salt = 0) {
  return static_cast<int64_t>(thread + 1) * 100'000'000 +
         static_cast<int64_t>(seq) * 100 + salt;
}

/// Runs `threads` workers for `txns_per_thread` transactions each over
/// `keys`, recording complete histories. A fraction of transactions abort
/// deliberately (their writes must never be read), and a fraction issue an
/// intermediate write (overwritten before commit; must never be read).
/// `thread_offset` shifts the value-encoding thread ids so that several
/// history batches over one database (e.g. before and after a crash
/// recovery) never collide on values. Under kSerializable a transaction may
/// additionally abort with SerializationFailure at any step; it is simply
/// recorded as aborted (the DSG checker below only examines committed
/// transactions).
std::vector<TxnRecord> RecordHistory(
    GraphDatabase& db, const std::vector<NodeId>& keys, int threads,
    int txns_per_thread, int thread_offset = 0,
    IsolationLevel isolation = IsolationLevel::kSnapshotIsolation) {
  std::mutex history_mu;
  std::vector<TxnRecord> history;
  std::vector<std::thread> workers;
  for (int worker = 0; worker < threads; ++worker) {
    workers.emplace_back([&, t = worker + thread_offset] {
      std::vector<TxnRecord> local;
      Random rng(t * 6151 + 17);
      for (int i = 0; i < txns_per_thread; ++i) {
        auto txn = db.Begin(isolation);
        TxnRecord rec;
        rec.id = txn->id();
        rec.snapshot_ts = txn->start_ts();

        // Read 1-3 keys first (before any own write), then write 1-2.
        const int reads = 1 + static_cast<int>(rng.Uniform(3));
        bool failed = false;
        for (int r = 0; r < reads && !failed; ++r) {
          const NodeId key = keys[rng.Uniform(keys.size())];
          if (rec.reads.count(key)) continue;
          auto value = txn->GetNodeProperty(key, "v");
          if (!value.ok()) {
            failed = true;
            break;
          }
          rec.reads[key] = value->AsInt();
        }
        const int writes = 1 + static_cast<int>(rng.Uniform(2));
        for (int w = 0; w < writes && !failed; ++w) {
          const NodeId key = keys[rng.Uniform(keys.size())];
          if (rng.Uniform(8) == 0) {
            // Intermediate write, overwritten below: invisible to everyone.
            const int64_t tmp = MakeValue(t, i, 99);
            if (!txn->SetNodeProperty(key, "v", PropertyValue(tmp)).ok()) {
              failed = true;
              break;
            }
            rec.intermediate_writes.push_back(tmp);
          }
          const int64_t value = MakeValue(t, i, w);
          if (!txn->SetNodeProperty(key, "v", PropertyValue(value)).ok()) {
            failed = true;
            break;
          }
          rec.writes[key] = value;
        }

        if (failed || !txn->IsActive()) {
          // Conflict abort: the engine already rolled back.
          rec.committed = false;
        } else if (rng.Uniform(10) == 0) {
          txn->Abort();
          rec.committed = false;
        } else {
          Status s = txn->Commit();
          rec.committed = s.ok();
          rec.commit_ts = txn->commit_ts();
        }
        local.push_back(std::move(rec));
      }
      std::lock_guard<std::mutex> guard(history_mu);
      for (auto& rec : local) history.push_back(std::move(rec));
    });
  }
  for (auto& t : workers) t.join();
  return history;
}

std::unique_ptr<GraphDatabase> OpenDb(uint64_t gc_interval_ms,
                                      uint64_t gc_backlog_threshold,
                                      size_t gc_shards = 4) {
  DatabaseOptions options;
  options.in_memory = true;
  options.background_gc_interval_ms = gc_interval_ms;
  options.gc_backlog_threshold = gc_backlog_threshold;
  options.gc_shards = gc_shards;
  auto db = GraphDatabase::Open(options);
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(*db);
}

/// Seeds the counters and returns (keys, the setup record): the setup
/// transaction participates in the history so initial reads attribute.
std::pair<std::vector<NodeId>, TxnRecord> Seed(GraphDatabase& db, int keys) {
  std::vector<NodeId> out;
  auto txn = db.Begin();
  TxnRecord rec;
  rec.id = txn->id();
  rec.snapshot_ts = txn->start_ts();
  for (int i = 0; i < keys; ++i) {
    const NodeId id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    rec.writes[id] = 0;
    out.push_back(id);
  }
  EXPECT_TRUE(txn->Commit().ok());
  rec.committed = true;
  rec.commit_ts = txn->commit_ts();
  return {out, rec};
}

// ---------------------------------------------------------------------------
// The suite
// ---------------------------------------------------------------------------

TEST(SiChecker, MultiThreadedHistoryIsSnapshotIsolated) {
  // GC daemon racing the workload: interval + nudges, the PR's default path.
  auto db = OpenDb(/*gc_interval_ms=*/1, /*gc_backlog_threshold=*/8);
  auto [keys, seed] = Seed(*db, 8);
  auto history = RecordHistory(*db, keys, /*threads=*/4,
                               /*txns_per_thread=*/200);
  history.push_back(seed);

  size_t committed = 0;
  for (const auto& rec : history) committed += rec.committed ? 1 : 0;
  ASSERT_GT(committed, 100u) << "workload too contended to be meaningful";

  SiHistoryChecker checker(std::move(history));
  const auto violations = checker.Check();
  for (const auto& v : violations) ADD_FAILURE() << v;
  EXPECT_TRUE(violations.empty());
}

// The SI axioms must hold while EIGHT per-shard drain workers reclaim
// concurrently with the workload: sharded drains prune different entities'
// chains in parallel, so any watermark bug (a shard draining past a live
// snapshot) would surface as a stale or impossible read in the history.
TEST(SiChecker, ShardedGcDrainHistoryIsSnapshotIsolated) {
  auto db = OpenDb(/*gc_interval_ms=*/1, /*gc_backlog_threshold=*/4,
                   /*gc_shards=*/8);
  ASSERT_EQ(db->gc_daemon()->worker_count(), 8u);
  auto [keys, seed] = Seed(*db, 16);  // Keys spread across every shard.
  auto history = RecordHistory(*db, keys, /*threads=*/4,
                               /*txns_per_thread=*/200);
  history.push_back(seed);

  size_t committed = 0;
  for (const auto& rec : history) committed += rec.committed ? 1 : 0;
  ASSERT_GT(committed, 100u) << "workload too contended to be meaningful";

  SiHistoryChecker checker(std::move(history));
  const auto violations = checker.Check();
  for (const auto& v : violations) ADD_FAILURE() << v;
  EXPECT_TRUE(violations.empty());
  // The workers really did reclaim during the run.
  EXPECT_GT(db->gc_daemon()->versions_pruned(), 0u);
}

TEST(SiChecker, HighContentionSingleKeyHistoryIsSnapshotIsolated) {
  // One hot key maximizes write-write conflicts and GC churn on one chain.
  auto db = OpenDb(/*gc_interval_ms=*/1, /*gc_backlog_threshold=*/4);
  auto [keys, seed] = Seed(*db, 1);
  auto history = RecordHistory(*db, keys, /*threads=*/4,
                               /*txns_per_thread=*/150);
  history.push_back(seed);

  SiHistoryChecker checker(std::move(history));
  const auto violations = checker.Check();
  for (const auto& v : violations) ADD_FAILURE() << v;
  EXPECT_TRUE(violations.empty());
}

// The SI axioms must survive the full durability stack: a multi-threaded
// history recorded while the WAL rotates through many segments and the
// checkpoint daemon truncates concurrently, then a crash injected MID-
// ROTATION (at the segment-creation crash point), recovery, and a second
// history on the recovered store. The recovery itself participates in the
// checked history as a read-only transaction: its reads must be the newest
// committed writes — exactly recovery exactness, phrased as axiom A2.
TEST(SiChecker, HistorySpansRotationDaemonCheckpointAndMidRotationCrash) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() /
                       ("neosi_si_rotation_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);

  DatabaseOptions options;
  options.in_memory = false;
  options.path = dir.string();
  options.background_gc_interval_ms = 1;
  options.gc_backlog_threshold = 8;
  options.checkpoint_interval_ms = 1;
  options.checkpoint_wal_threshold = 512;
  options.wal_segment_size = 512;  // Rotation every few commits.
  options.wal_recycle_segments = 1;

  std::vector<TxnRecord> history;
  std::vector<NodeId> keys;
  {
    auto opened = GraphDatabase::Open(options);
    ASSERT_TRUE(opened.ok()) << opened.status();
    auto db = std::move(*opened);
    auto [seeded_keys, seed] = Seed(*db, 6);
    keys = seeded_keys;
    history.push_back(seed);

    auto recorded = RecordHistory(*db, keys, /*threads=*/4,
                                  /*txns_per_thread=*/150);
    for (auto& rec : recorded) history.push_back(std::move(rec));

    // The workload really did span rotation and concurrent checkpoints.
    const DatabaseStats stats = db->Stats();
    ASSERT_GT(stats.store.wal_segments_created, 1u);
    ASSERT_GE(stats.store.checkpoint_markers + stats.store.checkpoints, 1u);

    // Crash in the middle of a segment rotation: arm the post-create crash
    // point and commit until it fires (the doomed commit fails exactly as
    // if the process died with the new segment created but unused).
    fault::CrashPoint crash(db.get(), "wal.segment.post_create");
    for (int i = 0; i < 400 && !crash.fired(); ++i) {
      auto txn = db->Begin(IsolationLevel::kSnapshotIsolation);
      TxnRecord rec;
      rec.id = txn->id();
      rec.snapshot_ts = txn->start_ts();
      const NodeId key = keys[static_cast<size_t>(i) % keys.size()];
      const int64_t value = MakeValue(/*thread=*/8, /*seq=*/i);
      ASSERT_TRUE(txn->SetNodeProperty(key, "v", PropertyValue(value)).ok());
      Status s = txn->Commit();
      rec.committed = s.ok();
      if (s.ok()) {
        rec.commit_ts = txn->commit_ts();
        rec.writes[key] = value;
      } else {
        // Died at the crash point before its record reached the log: the
        // write must never be observed.
        rec.writes[key] = value;
      }
      history.push_back(std::move(rec));
    }
    ASSERT_TRUE(crash.fired()) << "rotation crash point never reached";
    // Kill: destroy the database without any clean-shutdown work.
  }

  // Recover with daemons off (deterministic), read every key: the recovery
  // read joins the history as a read-only transaction and axiom A2 demands
  // it observe exactly the newest committed write per key.
  options.background_gc_interval_ms = 0;
  options.checkpoint_interval_ms = 0;
  auto opened = GraphDatabase::Open(options);
  ASSERT_TRUE(opened.ok()) << opened.status();
  auto db = std::move(*opened);
  {
    auto reader = db->Begin(IsolationLevel::kSnapshotIsolation);
    TxnRecord recovery_read;
    recovery_read.id = reader->id();
    recovery_read.snapshot_ts = reader->start_ts();
    recovery_read.committed = false;  // Read-only; reads still checked.
    for (NodeId key : keys) {
      auto value = reader->GetNodeProperty(key, "v");
      ASSERT_TRUE(value.ok());
      recovery_read.reads[key] = value->AsInt();
    }
    history.push_back(std::move(recovery_read));
  }

  // And the recovered store still produces SI histories (value space
  // shifted past every pre-crash writer's).
  auto post = RecordHistory(*db, keys, /*threads=*/2, /*txns_per_thread=*/50,
                            /*thread_offset=*/16);
  for (auto& rec : post) history.push_back(std::move(rec));

  SiHistoryChecker checker(std::move(history));
  const auto violations = checker.Check();
  for (const auto& v : violations) ADD_FAILURE() << v;
  EXPECT_TRUE(violations.empty());
  fs::remove_all(dir);
}

// A5: write skew — each transaction reads BOTH keys and writes the OTHER
// one. SI permits both to commit (disjoint write sets); the checker must
// accept the resulting history, because it is not an SI violation.
TEST(SiChecker, WriteSkewIsPermittedAndPassesTheChecker) {
  auto db = OpenDb(/*gc_interval_ms=*/50, /*gc_backlog_threshold=*/1024);
  auto [keys, seed] = Seed(*db, 2);
  const NodeId a = keys[0], b = keys[1];

  auto t1 = db->Begin(IsolationLevel::kSnapshotIsolation);
  auto t2 = db->Begin(IsolationLevel::kSnapshotIsolation);

  TxnRecord r1, r2;
  r1.id = t1->id();
  r1.snapshot_ts = t1->start_ts();
  r2.id = t2->id();
  r2.snapshot_ts = t2->start_ts();

  r1.reads[a] = t1->GetNodeProperty(a, "v")->AsInt();
  r1.reads[b] = t1->GetNodeProperty(b, "v")->AsInt();
  r2.reads[a] = t2->GetNodeProperty(a, "v")->AsInt();
  r2.reads[b] = t2->GetNodeProperty(b, "v")->AsInt();

  ASSERT_TRUE(t1->SetNodeProperty(a, "v", PropertyValue(int64_t{111})).ok());
  r1.writes[a] = 111;
  ASSERT_TRUE(t2->SetNodeProperty(b, "v", PropertyValue(int64_t{222})).ok());
  r2.writes[b] = 222;

  // Both commit: the classic SI anomaly.
  ASSERT_TRUE(t1->Commit().ok());
  r1.committed = true;
  r1.commit_ts = t1->commit_ts();
  ASSERT_TRUE(t2->Commit().ok());
  r2.committed = true;
  r2.commit_ts = t2->commit_ts();

  std::vector<TxnRecord> history{seed, r1, r2};
  SiHistoryChecker checker(std::move(history));
  const auto violations = checker.Check();
  for (const auto& v : violations) ADD_FAILURE() << v;
  EXPECT_TRUE(violations.empty());

  // And it really was write skew: each transaction read the other's key at
  // its pre-commit value while both overlapped.
  EXPECT_EQ(r1.reads.at(b), 0);
  EXPECT_EQ(r2.reads.at(a), 0);
}

// Checker self-test: a fabricated lost-update history MUST be rejected —
// otherwise the suite above proves nothing.
TEST(SiChecker, CheckerRejectsFabricatedLostUpdate) {
  TxnRecord w1, w2;
  w1.id = 1;
  w1.snapshot_ts = 10;
  w1.commit_ts = 20;
  w1.committed = true;
  w1.writes[7] = 100;
  w2.id = 2;
  w2.snapshot_ts = 15;  // Overlaps [10,20] and also writes key 7.
  w2.commit_ts = 25;
  w2.committed = true;
  w2.writes[7] = 200;
  SiHistoryChecker checker({w1, w2});
  EXPECT_FALSE(checker.Check().empty());
}

// Checker self-test: a stale read (older than the newest committed write at
// the snapshot) must be rejected.
TEST(SiChecker, CheckerRejectsFabricatedStaleRead) {
  TxnRecord w1, w2, r;
  w1.id = 1;
  w1.snapshot_ts = 1;
  w1.commit_ts = 2;
  w1.committed = true;
  w1.writes[7] = 100;
  w2.id = 2;
  w2.snapshot_ts = 3;
  w2.commit_ts = 4;
  w2.committed = true;
  w2.writes[7] = 200;
  r.id = 3;
  r.snapshot_ts = 5;  // Should see 200...
  r.committed = true;
  r.commit_ts = 6;
  r.reads[7] = 100;  // ...but observed the overwritten 100.
  SiHistoryChecker checker({w1, w2, r});
  EXPECT_FALSE(checker.Check().empty());
}

// Checker self-test: reading an aborted write must be rejected.
TEST(SiChecker, CheckerRejectsFabricatedAbortedRead) {
  TxnRecord w, r;
  w.id = 1;
  w.snapshot_ts = 1;
  w.committed = false;  // Aborted.
  w.writes[7] = 100;
  r.id = 2;
  r.snapshot_ts = 5;
  r.committed = true;
  r.commit_ts = 6;
  r.reads[7] = 100;
  SiHistoryChecker checker({w, r});
  EXPECT_FALSE(checker.Check().empty());
}

// ---------------------------------------------------------------------------
// Full-serializability checker: DSG cycle detection
// ---------------------------------------------------------------------------
//
// The SI axioms above deliberately permit write skew and the read-only
// transaction anomaly — under kSerializable those must be gone too. This
// checker builds the Direct Serialization Graph over the COMMITTED
// transactions of a recorded history and reports any cycle:
//
//   ww  Ti -> Tj : Tj installs the version of a key directly following
//                  Ti's (version order = commit-timestamp order).
//   wr  Ti -> Tj : Tj read the version Ti wrote.
//   rw  Ti -> Tj : Ti read the version directly preceding the one Tj
//                  wrote (anti-dependency — the edge SSI polices).
//
// A history is (conflict-)serializable iff this graph is acyclic, so a
// cycle is a serializability violation regardless of which SI axioms hold.
// Reads are attributed to writers through the unique MakeValue encoding,
// exactly like SiHistoryChecker.
class DsgChecker {
 public:
  explicit DsgChecker(std::vector<TxnRecord> history)
      : history_(std::move(history)) {}

  /// Returns a human-readable description of one cycle, or nullopt if the
  /// history is serializable.
  std::optional<std::string> FindCycle() {
    BuildEdges();
    return DetectCycle();
  }

 private:
  struct Write {
    Timestamp commit_ts;
    size_t txn;  // Index into committed_.
  };

  void AddEdge(size_t from, size_t to, const char* kind, NodeId key) {
    if (from == to) return;
    edges_[from].insert(to);
    labels_.emplace(std::make_pair(from, to),
                    std::string(kind) + " key=" + std::to_string(key));
  }

  void BuildEdges() {
    for (size_t i = 0; i < history_.size(); ++i) {
      if (history_[i].committed) committed_.push_back(i);
    }
    edges_.assign(committed_.size(), {});

    // Version order per key (ww edges between consecutive installers) and
    // (key, value) -> installer attribution for wr/rw edges.
    std::map<NodeId, std::vector<Write>> versions;
    std::map<std::pair<NodeId, int64_t>, size_t> installer;
    for (size_t c = 0; c < committed_.size(); ++c) {
      const TxnRecord& txn = history_[committed_[c]];
      for (const auto& [key, value] : txn.writes) {
        versions[key].push_back({txn.commit_ts, c});
        installer[{key, value}] = c;
      }
    }
    for (auto& [key, writes] : versions) {
      std::sort(writes.begin(), writes.end(),
                [](const Write& a, const Write& b) {
                  return a.commit_ts < b.commit_ts;
                });
      for (size_t i = 0; i + 1 < writes.size(); ++i) {
        AddEdge(writes[i].txn, writes[i + 1].txn, "ww", key);
      }
    }

    for (size_t c = 0; c < committed_.size(); ++c) {
      const TxnRecord& txn = history_[committed_[c]];
      for (const auto& [key, value] : txn.reads) {
        auto vs = versions.find(key);
        auto it = installer.find({key, value});
        if (it != installer.end()) {
          AddEdge(it->second, c, "wr", key);
          // rw: reader -> installer of the NEXT version of this key.
          if (vs != versions.end()) {
            const Timestamp read_ts =
                history_[committed_[it->second]].commit_ts;
            for (const Write& w : vs->second) {
              if (w.commit_ts > read_ts) {
                AddEdge(c, w.txn, "rw", key);
                break;
              }
            }
          }
        } else if (vs != versions.end() && !vs->second.empty()) {
          // Read of the initial state (no writer in the history): the
          // first installer overwrote what this transaction read.
          AddEdge(c, vs->second.front().txn, "rw", key);
        }
      }
    }
  }

  std::optional<std::string> DetectCycle() {
    // Iterative colored DFS; on finding a back edge, reconstruct the cycle
    // from the DFS stack.
    enum class Color { kWhite, kGray, kBlack };
    std::vector<Color> color(committed_.size(), Color::kWhite);
    std::vector<size_t> stack;        // Current DFS path.
    for (size_t root = 0; root < committed_.size(); ++root) {
      if (color[root] != Color::kWhite) continue;
      std::vector<std::pair<size_t, std::set<size_t>::const_iterator>> frames;
      color[root] = Color::kGray;
      stack.push_back(root);
      frames.emplace_back(root, edges_[root].begin());
      while (!frames.empty()) {
        auto& [node, it] = frames.back();
        if (it == edges_[node].end()) {
          color[node] = Color::kBlack;
          stack.pop_back();
          frames.pop_back();
          continue;
        }
        const size_t next = *it++;
        if (color[next] == Color::kGray) {
          std::ostringstream msg;
          msg << "serializability cycle:";
          auto at = std::find(stack.begin(), stack.end(), next);
          std::vector<size_t> cycle(at, stack.end());
          cycle.push_back(next);
          for (size_t i = 0; i < cycle.size(); ++i) {
            const TxnRecord& t = history_[committed_[cycle[i]]];
            msg << "\n  txn " << t.id << " [snap=" << t.snapshot_ts
                << " commit=" << t.commit_ts << "]";
            if (i + 1 < cycle.size()) {
              auto lbl = labels_.find({cycle[i], cycle[i + 1]});
              msg << " --"
                  << (lbl == labels_.end() ? std::string("?") : lbl->second)
                  << "--> ";
            }
          }
          return msg.str();
        }
        if (color[next] == Color::kWhite) {
          color[next] = Color::kGray;
          stack.push_back(next);
          frames.emplace_back(next, edges_[next].begin());
        }
      }
    }
    return std::nullopt;
  }

  std::vector<TxnRecord> history_;
  std::vector<size_t> committed_;           // Indices into history_.
  std::vector<std::set<size_t>> edges_;     // Adjacency over committed_.
  /// (from, to) -> "kind key=N", for cycle diagnostics.
  std::map<std::pair<size_t, size_t>, std::string> labels_;
};

// Recorded kSerializable histories must be FULLY serializable (DSG acyclic)
// on top of satisfying every SI axiom — with the GC daemon racing the
// workload exactly like the SI suites above.
TEST(DsgChecker, SerializableHistoryIsFullySerializable) {
  auto db = OpenDb(/*gc_interval_ms=*/1, /*gc_backlog_threshold=*/8);
  auto [keys, seed] = Seed(*db, 8);
  auto history = RecordHistory(*db, keys, /*threads=*/4,
                               /*txns_per_thread=*/200, /*thread_offset=*/0,
                               IsolationLevel::kSerializable);
  history.push_back(seed);

  size_t committed = 0;
  for (const auto& rec : history) committed += rec.committed ? 1 : 0;
  ASSERT_GT(committed, 50u) << "workload too contended to be meaningful";

  SiHistoryChecker si_checker(history);
  for (const auto& v : si_checker.Check()) ADD_FAILURE() << v;

  DsgChecker dsg(std::move(history));
  const auto cycle = dsg.FindCycle();
  EXPECT_FALSE(cycle.has_value()) << *cycle;
}

// Same property on one hot key, where every transaction conflicts and the
// pivot/doomed abort machinery fires constantly.
TEST(DsgChecker, HighContentionSerializableHistoryIsFullySerializable) {
  auto db = OpenDb(/*gc_interval_ms=*/1, /*gc_backlog_threshold=*/4);
  auto [keys, seed] = Seed(*db, 2);
  auto history = RecordHistory(*db, keys, /*threads=*/4,
                               /*txns_per_thread=*/150, /*thread_offset=*/0,
                               IsolationLevel::kSerializable);
  history.push_back(seed);

  DsgChecker dsg(std::move(history));
  const auto cycle = dsg.FindCycle();
  EXPECT_FALSE(cycle.has_value()) << *cycle;

  // The tracker really was engaged.
  const DatabaseStats stats = db->Stats();
  EXPECT_GT(stats.ssi_tracked_txns, 0u);
}

// A LIVE write-skew history recorded under SI: the SI checker must accept
// it (axiom A5) while the DSG checker must reject it — the two checkers
// bracket exactly the gap between SI and full serializability.
TEST(DsgChecker, LiveSiWriteSkewCyclesInDsgButPassesSiChecker) {
  auto db = OpenDb(/*gc_interval_ms=*/50, /*gc_backlog_threshold=*/1024);
  auto [keys, seed] = Seed(*db, 2);
  const NodeId a = keys[0], b = keys[1];

  auto t1 = db->Begin(IsolationLevel::kSnapshotIsolation);
  auto t2 = db->Begin(IsolationLevel::kSnapshotIsolation);
  TxnRecord r1, r2;
  r1.id = t1->id();
  r1.snapshot_ts = t1->start_ts();
  r2.id = t2->id();
  r2.snapshot_ts = t2->start_ts();
  r1.reads[a] = t1->GetNodeProperty(a, "v")->AsInt();
  r1.reads[b] = t1->GetNodeProperty(b, "v")->AsInt();
  r2.reads[a] = t2->GetNodeProperty(a, "v")->AsInt();
  r2.reads[b] = t2->GetNodeProperty(b, "v")->AsInt();
  ASSERT_TRUE(t1->SetNodeProperty(a, "v", PropertyValue(int64_t{111})).ok());
  r1.writes[a] = 111;
  ASSERT_TRUE(t2->SetNodeProperty(b, "v", PropertyValue(int64_t{222})).ok());
  r2.writes[b] = 222;
  ASSERT_TRUE(t1->Commit().ok());
  r1.committed = true;
  r1.commit_ts = t1->commit_ts();
  ASSERT_TRUE(t2->Commit().ok());
  r2.committed = true;
  r2.commit_ts = t2->commit_ts();

  std::vector<TxnRecord> history{seed, r1, r2};
  SiHistoryChecker si_checker(history);
  EXPECT_TRUE(si_checker.Check().empty());
  DsgChecker dsg(std::move(history));
  EXPECT_TRUE(dsg.FindCycle().has_value());
}

// Checker self-test: the fabricated write-skew shape (each reads both keys,
// writes the other, disjoint write sets, overlapping intervals) passes
// every SI axiom yet must cycle: T1 -rw-> T2 -rw-> T1.
TEST(DsgChecker, CheckerDetectsFabricatedWriteSkewCycle) {
  TxnRecord seed, t1, t2;
  seed.id = 1;
  seed.snapshot_ts = 1;
  seed.commit_ts = 2;
  seed.committed = true;
  seed.writes[7] = 0;
  seed.writes[8] = 0;
  t1.id = 2;
  t1.snapshot_ts = 3;
  t1.commit_ts = 10;
  t1.committed = true;
  t1.reads[7] = 0;
  t1.reads[8] = 0;
  t1.writes[7] = 111;
  t2.id = 3;
  t2.snapshot_ts = 4;
  t2.commit_ts = 11;
  t2.committed = true;
  t2.reads[7] = 0;
  t2.reads[8] = 0;
  t2.writes[8] = 222;

  std::vector<TxnRecord> history{seed, t1, t2};
  SiHistoryChecker si_checker(history);
  EXPECT_TRUE(si_checker.Check().empty()) << "write skew IS SI-legal";
  DsgChecker dsg(std::move(history));
  EXPECT_TRUE(dsg.FindCycle().has_value());
}

// Checker self-test: the read-only transaction anomaly (ROAnom, the
// serializable-parallel.spec shape). T2 reads X,Y and later writes X; T1
// writes Y and commits first; read-only T3 then observes Y=20 but X=0.
// Every SI axiom holds, yet T2 -rw-> T1 -wr-> T3 -rw-> T2 must cycle.
TEST(DsgChecker, CheckerDetectsFabricatedReadOnlyAnomalyCycle) {
  TxnRecord seed, t1, t2, t3;
  seed.id = 1;
  seed.snapshot_ts = 1;
  seed.commit_ts = 2;
  seed.committed = true;
  seed.writes[7] = 0;  // X
  seed.writes[8] = 0;  // Y
  t2.id = 2;
  t2.snapshot_ts = 3;
  t2.commit_ts = 30;  // Commits LAST.
  t2.committed = true;
  t2.reads[7] = 0;
  t2.reads[8] = 0;
  t2.writes[7] = -11;
  t1.id = 3;
  t1.snapshot_ts = 4;
  t1.commit_ts = 10;
  t1.committed = true;
  t1.reads[8] = 0;
  t1.writes[8] = 20;
  t3.id = 4;  // Read-only: observes t1's commit but not t2's.
  t3.snapshot_ts = 15;
  t3.commit_ts = 16;
  t3.committed = true;
  t3.reads[7] = 0;
  t3.reads[8] = 20;

  std::vector<TxnRecord> history{seed, t1, t2, t3};
  SiHistoryChecker si_checker(history);
  EXPECT_TRUE(si_checker.Check().empty()) << "ROAnom IS SI-legal";
  DsgChecker dsg(std::move(history));
  EXPECT_TRUE(dsg.FindCycle().has_value());
}

// Checker self-test negative control: a genuinely serial history must NOT
// cycle (guards against a checker that rejects everything).
TEST(DsgChecker, CheckerAcceptsSerialHistory) {
  TxnRecord seed, t1, t2;
  seed.id = 1;
  seed.snapshot_ts = 1;
  seed.commit_ts = 2;
  seed.committed = true;
  seed.writes[7] = 0;
  t1.id = 2;
  t1.snapshot_ts = 3;
  t1.commit_ts = 4;
  t1.committed = true;
  t1.reads[7] = 0;
  t1.writes[7] = 100;
  t2.id = 3;
  t2.snapshot_ts = 5;
  t2.commit_ts = 6;
  t2.committed = true;
  t2.reads[7] = 100;
  t2.writes[7] = 200;

  DsgChecker dsg({seed, t1, t2});
  EXPECT_FALSE(dsg.FindCycle().has_value());
}

}  // namespace
}  // namespace neosi
