// Snapshot lifecycle (snapshot-too-old policy) + sharded GC drain.
//
// The retention hazard: one long-lived snapshot pins the reclamation
// watermark, so under sustained writes the version backlog grows without
// bound. The lifecycle policy bounds it: the GC daemon's expiry sweep marks
// over-age (snapshot_max_age_ms) or watermark-pinning-under-pressure
// (snapshot_expire_backlog) snapshots expired; the watermark advances past
// them immediately and the victims fail their next read or commit with
// Status::SnapshotTooOld. The sharded GC list + per-shard drain workers
// then reclaim the released backlog in parallel.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "graph/graph_database.h"

namespace neosi {
namespace {

std::unique_ptr<GraphDatabase> OpenDb(DatabaseOptions options) {
  options.in_memory = true;
  auto db = GraphDatabase::Open(options);
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(*db);
}

void AwaitBacklogBelow(GraphDatabase& db, size_t below,
                       std::chrono::seconds deadline_s =
                           std::chrono::seconds(5)) {
  const auto deadline = std::chrono::steady_clock::now() + deadline_s;
  while (db.engine().gc_list.backlog() >= below &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

// ---------------------------------------------------------------------------
// Snapshot-too-old policy
// ---------------------------------------------------------------------------

// The headline scenario: a reader sleeps past snapshot_max_age_ms while a
// writer churns versions. The daemon expires the reader, the watermark
// advances past it, the backlog drains, and the reader's next read fails
// with SnapshotTooOld.
TEST(SnapshotLifecycle, LongReaderIsEvictedAndBacklogDrains) {
  DatabaseOptions options;
  options.background_gc_interval_ms = 5;
  options.gc_backlog_threshold = 8;
  options.snapshot_max_age_ms = 50;
  auto db = OpenDb(options);

  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    ASSERT_TRUE(txn->Commit().ok());
  }

  auto reader = db->Begin(IsolationLevel::kSnapshotIsolation);
  ASSERT_EQ(reader->GetNodeProperty(id, "v")->AsInt(), 0);

  for (int i = 1; i <= 100; ++i) {
    auto txn = db->Begin();
    ASSERT_TRUE(txn->SetNodeProperty(id, "v", PropertyValue(int64_t{i})).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }

  // "The reader falls asleep": outlive snapshot_max_age_ms.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  // The watermark advanced past the expired reader and the backlog drained
  // WITHOUT the reader doing anything (no read, no abort).
  AwaitBacklogBelow(*db, 1);
  EXPECT_EQ(db->engine().gc_list.backlog(), 0u);
  EXPECT_TRUE(db->engine().active_txns.IsExpired(reader->id()));

  // The reader's next read reports the eviction...
  auto read = reader->GetNodeProperty(id, "v");
  ASSERT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsSnapshotTooOld()) << read.status();
  EXPECT_TRUE(read.status().IsRetryable());
  EXPECT_EQ(reader->state(), TxnState::kAborted);

  // ...and the per-cause counters attribute it.
  const DatabaseStats stats = db->Stats();
  EXPECT_GE(stats.snapshots_expired_age, 1u);
  EXPECT_GE(stats.snapshot_too_old_aborts, 1u);

  // A restarted transaction reads the newest state.
  EXPECT_EQ(db->Begin()->GetNodeProperty(id, "v")->AsInt(), 100);
}

// Backlog-pressure trigger with age expiry OFF: the pinning snapshot is
// evicted as soon as the backlog crosses snapshot_expire_backlog (after the
// grace period), long before any age limit.
TEST(SnapshotLifecycle, BacklogPressureEvictsPinningSnapshot) {
  DatabaseOptions options;
  options.background_gc_interval_ms = 5;
  options.gc_backlog_threshold = 8;
  options.snapshot_max_age_ms = 0;       // Age expiry disabled.
  options.snapshot_expire_backlog = 64;  // Pressure trigger only.
  auto db = OpenDb(options);

  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto pinner = db->Begin(IsolationLevel::kSnapshotIsolation);
  ASSERT_EQ(pinner->GetNodeProperty(id, "v")->AsInt(), 0);

  // Outlive the eviction grace period, then push the backlog over the
  // trigger.
  std::this_thread::sleep_for(ActiveTxnTable::kBacklogExpiryGrace +
                              std::chrono::milliseconds(10));
  for (int i = 1; i <= 200; ++i) {
    auto txn = db->Begin();
    ASSERT_TRUE(txn->SetNodeProperty(id, "v", PropertyValue(int64_t{i})).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }

  AwaitBacklogBelow(*db, 64);
  EXPECT_LT(db->engine().gc_list.backlog(), 64u);
  EXPECT_TRUE(db->engine().active_txns.IsExpired(pinner->id()));

  auto read = pinner->GetNodeProperty(id, "v");
  ASSERT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsSnapshotTooOld()) << read.status();

  const DatabaseStats stats = db->Stats();
  EXPECT_GE(stats.snapshots_expired_backlog, 1u);
  EXPECT_EQ(stats.snapshots_expired_age, 0u);
}

// Policy OFF (the default): the pinned backlog grows with every update and
// the reader keeps its snapshot forever — the exact hazard the policy
// exists to bound (contrast with LongReaderIsEvictedAndBacklogDrains).
TEST(SnapshotLifecycle, PolicyOffPreservesPinnedSnapshots) {
  DatabaseOptions options;
  options.background_gc_interval_ms = 5;
  options.gc_backlog_threshold = 8;
  auto db = OpenDb(options);

  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto reader = db->Begin(IsolationLevel::kSnapshotIsolation);
  for (int i = 1; i <= 50; ++i) {
    auto txn = db->Begin();
    ASSERT_TRUE(txn->SetNodeProperty(id, "v", PropertyValue(int64_t{i})).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  // Nothing was reclaimed and the old snapshot still reads its version.
  EXPECT_GE(db->engine().gc_list.backlog(), 50u);
  EXPECT_FALSE(db->engine().active_txns.IsExpired(reader->id()));
  EXPECT_EQ(reader->GetNodeProperty(id, "v")->AsInt(), 0);
  EXPECT_EQ(db->Stats().snapshot_too_old_aborts, 0u);
}

// An expired WRITER must release its locks when the eviction surfaces at
// commit: a blocked competitor gets through immediately afterwards.
TEST(SnapshotLifecycle, ExpiredCommitAbortsAndReleasesLocks) {
  DatabaseOptions options;
  options.background_gc_interval_ms = 5;
  options.snapshot_max_age_ms = 40;
  auto db = OpenDb(options);

  NodeId a, b;
  {
    auto txn = db->Begin();
    a = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    b = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    ASSERT_TRUE(txn->Commit().ok());
  }

  auto writer = db->Begin(IsolationLevel::kSnapshotIsolation);
  ASSERT_TRUE(writer->SetNodeProperty(a, "v", PropertyValue(int64_t{1})).ok());
  ASSERT_TRUE(writer->SetNodeProperty(b, "v", PropertyValue(int64_t{1})).ok());

  // Sleep past the age limit; the daemon marks the writer expired while it
  // still holds long write locks on a and b.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  ASSERT_TRUE(db->engine().active_txns.IsExpired(writer->id()));

  Status commit = writer->Commit();
  ASSERT_FALSE(commit.ok());
  EXPECT_TRUE(commit.IsSnapshotTooOld()) << commit;
  EXPECT_EQ(writer->state(), TxnState::kAborted);

  // The locks are gone: a competitor writes both entities without waiting
  // (no-wait policy would abort on any residual lock).
  auto competitor = db->Begin(IsolationLevel::kSnapshotIsolation);
  EXPECT_TRUE(
      competitor->SetNodeProperty(a, "v", PropertyValue(int64_t{2})).ok());
  EXPECT_TRUE(
      competitor->SetNodeProperty(b, "v", PropertyValue(int64_t{2})).ok());
  EXPECT_TRUE(competitor->Commit().ok());
  EXPECT_EQ(db->Begin()->GetNodeProperty(a, "v")->AsInt(), 2);
}

// Read-committed transactions read the newest committed state, which
// expiry-driven reclamation never removes. Since the epoch-read-path
// change an RC registration never pins the watermark at all, so the
// lifecycle sweep has nothing to expire: a long-lived RC transaction is
// never marked, never aborted with SnapshotTooOld, and never holds the
// watermark below the oracle.
TEST(SnapshotLifecycle, ReadCommittedSurvivesExpiry) {
  DatabaseOptions options;
  options.background_gc_interval_ms = 5;
  options.snapshot_max_age_ms = 30;
  auto db = OpenDb(options);

  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{7})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto rc = db->Begin(IsolationLevel::kReadCommitted);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // Not a victim: a non-pinning registration is invisible to the sweep.
  EXPECT_FALSE(db->engine().active_txns.IsExpired(rc->id()));
  // Not a pin: the watermark sits at the oracle's read timestamp even
  // though this RC transaction started long ago and is still open.
  EXPECT_EQ(db->Watermark(), db->engine().oracle.ReadTs());
  auto read = rc->GetNodeProperty(id, "v");
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read->AsInt(), 7);
  EXPECT_TRUE(rc->Commit().ok());
}

// The lifecycle policy's backlog-pressure pass also ignores RC
// registrations: with an RC reader as the only open transaction, a
// threshold-crossing backlog drains on its own (the RC entry was never
// the pin), and the reader keeps observing the newest committed value
// throughout — never SnapshotTooOld.
TEST(SnapshotLifecycle, ReadCommittedNeverPinsBacklogNorExpires) {
  DatabaseOptions options;
  options.background_gc_interval_ms = 2;
  options.gc_backlog_threshold = 8;
  options.snapshot_max_age_ms = 20;
  options.snapshot_expire_backlog = 16;
  auto db = OpenDb(options);

  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto rc = db->Begin(IsolationLevel::kReadCommitted);
  int64_t last_seen = 0;
  for (int i = 1; i <= 64; ++i) {
    {
      auto w = db->Begin(IsolationLevel::kSnapshotIsolation);
      ASSERT_TRUE(w->SetNodeProperty(id, "v", PropertyValue(int64_t{i})).ok());
      ASSERT_TRUE(w->Commit().ok());
    }
    auto read = rc->GetNodeProperty(id, "v");
    ASSERT_TRUE(read.ok()) << read.status();  // never SnapshotTooOld
    EXPECT_GE(read->AsInt(), last_seen);      // RC: monotone latest-committed
    last_seen = read->AsInt();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_FALSE(db->engine().active_txns.IsExpired(rc->id()));
  EXPECT_EQ(db->engine().active_txns.snapshots_expired_age(), 0u);
  EXPECT_EQ(db->engine().active_txns.snapshots_expired_backlog(), 0u);
  // The backlog drained past the open RC reader.
  Timestamp deadline_checks = 0;
  while (db->engine().gc_list.backlog() > 0 && deadline_checks < 500) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ++deadline_checks;
  }
  EXPECT_EQ(db->engine().gc_list.backlog(), 0u);
  EXPECT_TRUE(rc->GetNodeProperty(id, "v").ok());
  EXPECT_TRUE(rc->Commit().ok());
}

// ---------------------------------------------------------------------------
// Sharded GC drain
// ---------------------------------------------------------------------------

// Multi-entity churn across every shard: the per-shard workers must drain
// the whole backlog, the chains must end at length 1, and the aggregate
// accounting (backlog == appended - reclaimed) must hold.
TEST(ShardedGc, DrainsAcrossShardsUnderConcurrentWriters) {
  DatabaseOptions options;
  options.background_gc_interval_ms = 2;
  options.gc_backlog_threshold = 16;
  options.gc_shards = 8;
  auto db = OpenDb(options);
  ASSERT_EQ(db->engine().gc_list.shard_count(), 8u);
  ASSERT_EQ(db->gc_daemon()->worker_count(), 8u);

  std::vector<NodeId> nodes;
  {
    auto txn = db->Begin();
    for (int i = 0; i < 64; ++i) {
      nodes.push_back(*txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}}));
    }
    ASSERT_TRUE(txn->Commit().ok());
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < 250; ++i) {
        auto txn = db->Begin();
        Status s = txn->SetNodeProperty(nodes[(w * 250 + i) % nodes.size()],
                                        "v", PropertyValue(int64_t{i}));
        if (s.ok()) s = txn->Commit();
        if (!s.ok() && !s.IsRetryable()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Quiescence = the POST-state (backlog empty AND every chain pruned to
  // one version), not a single gauge read: the aggregate gauge can dip to
  // zero while a drain pass is still pruning what it popped.
  const auto& list = db->engine().gc_list;
  const auto drained = [&] {
    if (list.backlog() != 0) return false;
    for (NodeId id : nodes) {
      auto node = db->engine().cache->PeekNode(id);
      if (node == nullptr || node->chain.Length() != 1) return false;
    }
    return true;
  };
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!drained() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(drained());
  EXPECT_EQ(list.backlog(), list.total_appended() - list.total_reclaimed());
  for (size_t s = 0; s < list.shard_count(); ++s) {
    EXPECT_EQ(list.shard_backlog(s), 0u) << "shard " << s;
  }
  EXPECT_GT(db->gc_daemon()->versions_pruned(), 0u);
}

// Tombstone purges across shards: a node and its relationships hash to
// different shards, so the node purge may run before the rel shards have
// drained — the deferral path must retry it until the chain is physically
// empty, and every entity must end purged.
TEST(ShardedGc, CrossShardTombstonePurgesConverge) {
  DatabaseOptions options;
  options.background_gc_interval_ms = 2;
  options.gc_backlog_threshold = 4;
  options.gc_shards = 8;
  auto db = OpenDb(options);

  // A hub node with many spokes maximizes cross-shard rel/node splits.
  std::vector<NodeId> hubs;
  std::vector<NodeId> spokes;
  std::vector<RelId> rels;
  {
    auto txn = db->Begin();
    for (int h = 0; h < 8; ++h) {
      const NodeId hub = *txn->CreateNode({"Hub"});
      hubs.push_back(hub);
      for (int s = 0; s < 4; ++s) {
        const NodeId spoke = *txn->CreateNode({"Spoke"});
        spokes.push_back(spoke);
        rels.push_back(*txn->CreateRelationship(hub, spoke, "LINK"));
      }
    }
    ASSERT_TRUE(txn->Commit().ok());
  }
  {
    auto txn = db->Begin();
    for (RelId r : rels) ASSERT_TRUE(txn->DeleteRelationship(r).ok());
    for (NodeId h : hubs) ASSERT_TRUE(txn->DeleteNode(h).ok());
    for (NodeId s : spokes) ASSERT_TRUE(txn->DeleteNode(s).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }

  // True quiescence is the PURGE counter, not the backlog gauge: the
  // aggregate gauge transiently dips to zero between a shard pop and a
  // deferred node's re-append, so a backlog()==0 read can race in-flight
  // passes (flaked under TSan before this wait was counter-based).
  const size_t expected = hubs.size() + spokes.size() + rels.size();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (db->gc_daemon()->tombstones_purged() < expected &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(db->gc_daemon()->tombstones_purged(), expected);
  for (NodeId h : hubs) EXPECT_FALSE(db->engine().store.NodeInUse(h));
  for (NodeId s : spokes) EXPECT_FALSE(db->engine().store.NodeInUse(s));
  for (RelId r : rels) EXPECT_FALSE(db->engine().store.RelInUse(r));
  AwaitBacklogBelow(*db, 1);
  EXPECT_EQ(db->engine().gc_list.backlog(), 0u);
}

// One shard reproduces the pre-sharding topology exactly; the manual
// RunGc() path must also drain a multi-shard list completely in one pass.
TEST(ShardedGc, SingleShardAndManualPassStayEquivalent) {
  for (const size_t shards : {size_t{1}, size_t{4}}) {
    DatabaseOptions options;
    options.background_gc_interval_ms = 0;  // Manual GC only.
    options.gc_shards = shards;
    auto db = OpenDb(options);
    ASSERT_EQ(db->engine().gc_list.shard_count(), shards);

    std::vector<NodeId> nodes;
    {
      auto txn = db->Begin();
      for (int i = 0; i < 16; ++i) {
        nodes.push_back(
            *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}}));
      }
      ASSERT_TRUE(txn->Commit().ok());
    }
    for (int round = 1; round <= 3; ++round) {
      auto txn = db->Begin();
      for (NodeId id : nodes) {
        ASSERT_TRUE(
            txn->SetNodeProperty(id, "v", PropertyValue(int64_t{round})).ok());
      }
      ASSERT_TRUE(txn->Commit().ok());
    }
    ASSERT_EQ(db->engine().gc_list.backlog(), 48u);

    const GcStats stats = db->RunGc();
    EXPECT_EQ(stats.versions_pruned, 48u) << shards << " shards";
    EXPECT_EQ(db->engine().gc_list.backlog(), 0u);
    EXPECT_EQ(db->Begin()->GetNodeProperty(nodes[0], "v")->AsInt(), 3);
  }
}

// Expiry + sharded drain together under concurrent load: pinned readers
// keep starting while writers churn; the policy keeps evicting them, so
// the backlog high-water stays bounded and the system ends fully drained.
TEST(ShardedGc, PolicyBoundsBacklogUnderPinningReaders) {
  DatabaseOptions options;
  options.background_gc_interval_ms = 2;
  options.gc_backlog_threshold = 32;
  options.gc_shards = 4;
  options.snapshot_max_age_ms = 20;
  auto db = OpenDb(options);

  std::vector<NodeId> nodes;
  {
    auto txn = db->Begin();
    for (int i = 0; i < 32; ++i) {
      nodes.push_back(*txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}}));
    }
    ASSERT_TRUE(txn->Commit().ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<int> evicted_readers{0};
  std::thread reader([&] {
    while (!stop.load()) {
      auto txn = db->Begin(IsolationLevel::kSnapshotIsolation);
      (void)txn->GetNodeProperty(nodes[0], "v");
      std::this_thread::sleep_for(std::chrono::milliseconds(40));
      auto again = txn->GetNodeProperty(nodes[0], "v");
      if (!again.ok() && again.status().IsSnapshotTooOld()) {
        evicted_readers.fetch_add(1);
      }
    }
  });
  // Duration-based write churn: the run must span MANY eviction cycles
  // (snapshot_max_age_ms = 20) for "bounded" to mean anything — a burst
  // that finishes inside one cycle legitimately peaks at its own size.
  const auto write_deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(400);
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; std::chrono::steady_clock::now() < write_deadline;
           ++i) {
        auto txn = db->Begin();
        Status s = txn->SetNodeProperty(nodes[(w * 997 + i) % nodes.size()],
                                        "v", PropertyValue(int64_t{i}));
        if (s.ok()) (void)txn->Commit();
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  reader.join();

  EXPECT_GE(evicted_readers.load(), 1);
  AwaitBacklogBelow(*db, 1);
  EXPECT_EQ(db->engine().gc_list.backlog(), 0u);
  const DatabaseStats stats = db->Stats();
  EXPECT_GE(stats.snapshots_expired_age, 1u);
  // Bounded: the peak backlog stayed well below the total version volume
  // (policy off, the pinning readers would have pinned ~everything:
  // high-water ≈ appended). On a machine too slow to generate judgeable
  // churn in the window (e.g. sanitizer builds on a loaded runner), skip
  // rather than fail — low churn is a property of the box, not a bug.
  if (stats.gc_appended <= 1000u) {
    GTEST_SKIP() << "write churn too small to judge the bound (appended="
                 << stats.gc_appended << ")";
  }
  EXPECT_LT(stats.gc_backlog_high_water, stats.gc_appended / 2);
}

}  // namespace
}  // namespace neosi
