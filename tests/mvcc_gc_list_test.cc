// GcList: the §4 timestamp-sorted reclamation queue.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "mvcc/gc_list.h"

namespace neosi {
namespace {

GcEntry Entry(uint64_t id, Timestamp obsolete_since) {
  GcEntry entry;
  entry.key = EntityKey::Node(id);
  entry.version = std::make_shared<Version>();
  entry.version->commit_ts = obsolete_since > 0 ? obsolete_since - 1 : 0;
  entry.obsolete_since = obsolete_since;
  return entry;
}

TEST(GcList, PopsOnlyReclaimablePrefix) {
  GcList list;
  for (Timestamp ts : {10, 20, 30, 40}) list.Append(Entry(ts, ts));
  auto popped = list.PopReclaimable(25);
  ASSERT_EQ(popped.size(), 2u);
  EXPECT_EQ(popped[0].obsolete_since, 10u);
  EXPECT_EQ(popped[1].obsolete_since, 20u);
  EXPECT_EQ(list.size(), 2u);
  EXPECT_EQ(list.OldestObsoleteSince(), 30u);
}

TEST(GcList, WatermarkBoundaryIsInclusive) {
  GcList list;
  list.Append(Entry(1, 100));
  // A version superseded AT the watermark is reclaimable: a snapshot with
  // start_ts == 100 reads the superseding version, not this one.
  EXPECT_EQ(list.PopReclaimable(100).size(), 1u);
}

TEST(GcList, EmptyListBehaviour) {
  GcList list;
  EXPECT_TRUE(list.PopReclaimable(kMaxTimestamp).empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.OldestObsoleteSince(), kMaxTimestamp);
}

TEST(GcList, MaxBatchLimitsPop) {
  GcList list;
  for (Timestamp ts = 1; ts <= 10; ++ts) list.Append(Entry(ts, ts));
  EXPECT_EQ(list.PopReclaimable(100, 3).size(), 3u);
  EXPECT_EQ(list.size(), 7u);
  EXPECT_EQ(list.PopReclaimable(100).size(), 7u);
}

TEST(GcList, CountersTrackTraffic) {
  GcList list;
  for (Timestamp ts = 1; ts <= 5; ++ts) list.Append(Entry(ts, ts));
  list.PopReclaimable(3);
  EXPECT_EQ(list.total_appended(), 5u);
  EXPECT_EQ(list.total_reclaimed(), 3u);
}

TEST(ShardedGcList, RoutesByEntityKeyAndKeepsShardOrder) {
  ShardedGcList list(4);
  ASSERT_EQ(list.shard_count(), 4u);
  // An entity's entries always land in the same shard, in timestamp order.
  for (Timestamp ts : {30, 10, 20}) list.Append(Entry(7, ts));
  const size_t shard = list.ShardOf(EntityKey::Node(7));
  EXPECT_EQ(list.shard_backlog(shard), 3u);
  EXPECT_EQ(list.backlog(), 3u);
  auto popped = list.PopReclaimableFromShard(shard, 100);
  ASSERT_EQ(popped.size(), 3u);
  EXPECT_EQ(popped[0].obsolete_since, 10u);
  EXPECT_EQ(popped[1].obsolete_since, 20u);
  EXPECT_EQ(popped[2].obsolete_since, 30u);
  EXPECT_EQ(list.backlog(), 0u);
}

TEST(ShardedGcList, AggregateGaugesSpanShards) {
  ShardedGcList list(8);
  for (uint64_t id = 0; id < 64; ++id) list.Append(Entry(id, id + 1));
  EXPECT_EQ(list.backlog(), 64u);
  EXPECT_GE(list.backlog_high_water(), 64u);
  EXPECT_EQ(list.total_appended(), 64u);
  EXPECT_EQ(list.OldestObsoleteSince(), 1u);
  size_t summed = 0;
  for (size_t s = 0; s < list.shard_count(); ++s) {
    summed += list.shard_backlog(s);
  }
  EXPECT_EQ(summed, 64u);

  // Global pop honours the watermark across every shard.
  auto popped = list.PopReclaimable(32);
  EXPECT_EQ(popped.size(), 32u);
  EXPECT_EQ(list.backlog(), 32u);
  EXPECT_EQ(list.total_reclaimed(), 32u);
  EXPECT_EQ(list.OldestObsoleteSince(), 33u);
  for (const GcEntry& e : popped) EXPECT_LE(e.obsolete_since, 32u);
}

TEST(ShardedGcList, ShardCountClampsToAtLeastOne) {
  ShardedGcList list(0);
  EXPECT_EQ(list.shard_count(), 1u);
  list.Append(Entry(1, 1));
  EXPECT_EQ(list.PopReclaimable(1).size(), 1u);
  ShardedGcList capped(1 << 20);
  EXPECT_EQ(capped.shard_count(), ShardedGcList::kMaxShards);
}

TEST(ShardedGcList, MaxBatchSpansShards) {
  ShardedGcList list(4);
  for (uint64_t id = 0; id < 16; ++id) list.Append(Entry(id, 1));
  EXPECT_EQ(list.PopReclaimable(1, 5).size(), 5u);
  EXPECT_EQ(list.backlog(), 11u);
  EXPECT_EQ(list.PopReclaimable(1).size(), 11u);
}

TEST(ShardedGcList, ConcurrentShardDrainersStayConsistent) {
  ShardedGcList list(4);
  std::atomic<Timestamp> next_ts{1};
  std::atomic<uint64_t> reclaimed{0};
  std::atomic<bool> stop{false};

  std::thread appender([&] {
    for (uint64_t i = 0; i < 20000; ++i) {
      const Timestamp ts = next_ts.fetch_add(1);
      list.Append(Entry(/*id=*/i % 97, ts));
    }
    stop.store(true);
  });
  // One independent drainer per shard — the daemon's topology.
  std::vector<std::thread> drainers;
  for (size_t shard = 0; shard < list.shard_count(); ++shard) {
    drainers.emplace_back([&, shard] {
      while (!stop.load() || list.shard_backlog(shard) > 0) {
        reclaimed.fetch_add(
            list.PopReclaimableFromShard(shard, next_ts.load()).size());
      }
    });
  }
  appender.join();
  for (auto& t : drainers) t.join();
  EXPECT_EQ(reclaimed.load(), 20000u);
  EXPECT_EQ(list.backlog(), 0u);
  EXPECT_EQ(list.total_appended(), 20000u);
  EXPECT_EQ(list.total_reclaimed(), 20000u);
}

TEST(GcList, ConcurrentAppendersAndCollector) {
  GcList list;
  std::atomic<Timestamp> next_ts{1};
  std::atomic<uint64_t> reclaimed{0};
  std::atomic<bool> stop{false};

  // Single appender preserves the monotonicity contract (commit timestamps
  // are handed out under the commit lock in the engine).
  std::thread appender([&] {
    for (int i = 0; i < 20000; ++i) {
      const Timestamp ts = next_ts.fetch_add(1);
      list.Append(Entry(ts, ts));
    }
    stop.store(true);
  });
  std::thread collector([&] {
    while (!stop.load() || list.size() > 0) {
      reclaimed.fetch_add(list.PopReclaimable(next_ts.load()).size());
    }
  });
  appender.join();
  collector.join();
  EXPECT_EQ(reclaimed.load(), 20000u);
  EXPECT_EQ(list.size(), 0u);
}

}  // namespace
}  // namespace neosi
