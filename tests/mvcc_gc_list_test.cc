// GcList: the §4 timestamp-sorted reclamation queue.

#include <gtest/gtest.h>

#include <thread>

#include "mvcc/gc_list.h"

namespace neosi {
namespace {

GcEntry Entry(uint64_t id, Timestamp obsolete_since) {
  GcEntry entry;
  entry.key = EntityKey::Node(id);
  entry.version = std::make_shared<Version>();
  entry.version->commit_ts = obsolete_since > 0 ? obsolete_since - 1 : 0;
  entry.obsolete_since = obsolete_since;
  return entry;
}

TEST(GcList, PopsOnlyReclaimablePrefix) {
  GcList list;
  for (Timestamp ts : {10, 20, 30, 40}) list.Append(Entry(ts, ts));
  auto popped = list.PopReclaimable(25);
  ASSERT_EQ(popped.size(), 2u);
  EXPECT_EQ(popped[0].obsolete_since, 10u);
  EXPECT_EQ(popped[1].obsolete_since, 20u);
  EXPECT_EQ(list.size(), 2u);
  EXPECT_EQ(list.OldestObsoleteSince(), 30u);
}

TEST(GcList, WatermarkBoundaryIsInclusive) {
  GcList list;
  list.Append(Entry(1, 100));
  // A version superseded AT the watermark is reclaimable: a snapshot with
  // start_ts == 100 reads the superseding version, not this one.
  EXPECT_EQ(list.PopReclaimable(100).size(), 1u);
}

TEST(GcList, EmptyListBehaviour) {
  GcList list;
  EXPECT_TRUE(list.PopReclaimable(kMaxTimestamp).empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.OldestObsoleteSince(), kMaxTimestamp);
}

TEST(GcList, MaxBatchLimitsPop) {
  GcList list;
  for (Timestamp ts = 1; ts <= 10; ++ts) list.Append(Entry(ts, ts));
  EXPECT_EQ(list.PopReclaimable(100, 3).size(), 3u);
  EXPECT_EQ(list.size(), 7u);
  EXPECT_EQ(list.PopReclaimable(100).size(), 7u);
}

TEST(GcList, CountersTrackTraffic) {
  GcList list;
  for (Timestamp ts = 1; ts <= 5; ++ts) list.Append(Entry(ts, ts));
  list.PopReclaimable(3);
  EXPECT_EQ(list.total_appended(), 5u);
  EXPECT_EQ(list.total_reclaimed(), 3u);
}

TEST(GcList, ConcurrentAppendersAndCollector) {
  GcList list;
  std::atomic<Timestamp> next_ts{1};
  std::atomic<uint64_t> reclaimed{0};
  std::atomic<bool> stop{false};

  // Single appender preserves the monotonicity contract (commit timestamps
  // are handed out under the commit lock in the engine).
  std::thread appender([&] {
    for (int i = 0; i < 20000; ++i) {
      const Timestamp ts = next_ts.fetch_add(1);
      list.Append(Entry(ts, ts));
    }
    stop.store(true);
  });
  std::thread collector([&] {
    while (!stop.load() || list.size() > 0) {
      reclaimed.fetch_add(list.PopReclaimable(next_ts.load()).size());
    }
  });
  appender.join();
  collector.join();
  EXPECT_EQ(reclaimed.load(), 20000u);
  EXPECT_EQ(list.size(), 0u);
}

}  // namespace
}  // namespace neosi
