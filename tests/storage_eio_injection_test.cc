// EIO ("fsyncgate") injection matrix over the commit I/O path.
//
// A crash is not the only way durability breaks: the kernel can REPORT a
// write-back failure from fsync and silently drop the dirty pages, so a
// naive retry gets a clean fsync that never re-wrote the lost data — the
// PostgreSQL fsyncgate failure mode. The Wal's answer is sticky poison:
// the first sync-path EIO fails the in-flight operation before it acks and
// wedges the log until a reopen re-reads what is really on disk.
//
// This suite drives every named EIO point under both isolation levels
// (the SSI commit path brackets the WAL append with extra lock work and
// must observe the identical fail-before-ack contract), kills the process
// image after the poison, and shadow-verifies recovery: an injected EIO may
// fail-before-ack or poison, but must NEVER surface as acked-then-lost.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "fault_injection.h"
#include "graph/graph_database.h"

namespace neosi {
namespace {

namespace fs = std::filesystem;

struct MatrixCase {
  std::string point;
  IsolationLevel isolation;
  bool async_flush;
};

std::string CaseTag(const MatrixCase& param) {
  std::string name = param.point;
  for (char& c : name) {
    if (c == '.') c = '_';
  }
  name += param.isolation == IsolationLevel::kSerializable ? "_ssi" : "_si";
  name += param.async_flush ? "_async" : "_inline";
  return name;
}

std::string CaseName(const testing::TestParamInfo<MatrixCase>& info) {
  return CaseTag(info.param);
}

std::vector<MatrixCase> BuildMatrix() {
  std::vector<MatrixCase> cases;
  for (const std::string& point : fault::AllEioPoints()) {
    for (IsolationLevel isolation : {IsolationLevel::kSnapshotIsolation,
                                     IsolationLevel::kSerializable}) {
      cases.push_back({point, isolation, /*async_flush=*/true});
    }
  }
  // The inline-fsync path (wal_async_flush=false, the E18 baseline) shares
  // the poison machinery but reaches it from the committer's own thread;
  // one point per isolation level keeps the matrix honest without doubling
  // its wall-clock.
  cases.push_back(
      {"wal.sync.fail", IsolationLevel::kSnapshotIsolation, false});
  cases.push_back({"wal.sync.fail", IsolationLevel::kSerializable, false});
  return cases;
}

class EioMatrixTest : public testing::TestWithParam<MatrixCase> {};

TEST_P(EioMatrixTest, StickyPoisonNeverLosesAckedCommit) {
  const MatrixCase& param = GetParam();
  fault::CrashLoopHarness::Options options;
  options.isolation = param.isolation;
  options.wal_async_flush = param.async_flush;
  options.rounds = 4;
  fault::CrashLoopHarness harness(
      fs::temp_directory_path() / ("neosi_eio_" + CaseTag(param)), options);
  harness.RunEio(param.point);
}

INSTANTIATE_TEST_SUITE_P(CommitIoPath, EioMatrixTest,
                         testing::ValuesIn(BuildMatrix()), CaseName);

// --- replica cursor sync -----------------------------------------------------

// The replica applier persists its shipping cursor with the same
// fsync-then-ack discipline: an EIO on the cursor file fails RunOnce before
// the new cursor is trusted, and a restart resumes from the last durable
// cursor — replaying a shipped batch twice (idempotent) rather than
// skipping one (lost).
TEST(ReplicaCursorEio, FailedCursorSyncResumesWithoutLoss) {
  const fs::path base = fs::temp_directory_path() / "neosi_eio_replica";
  const fs::path primary_dir = base / "primary";
  const fs::path replica_dir = base / "replica";
  fs::remove_all(base);
  fs::create_directories(primary_dir);
  fs::create_directories(replica_dir);

  DatabaseOptions primary_options;
  primary_options.in_memory = false;
  primary_options.path = primary_dir.string();
  primary_options.background_gc_interval_ms = 0;
  primary_options.checkpoint_interval_ms = 0;
  primary_options.sync_commits = true;
  primary_options.wal_segment_size = 512;
  primary_options.wal_keep_segments = 4;

  DatabaseOptions replica_options;
  replica_options.in_memory = false;
  replica_options.path = replica_dir.string();
  replica_options.replica_of_path = primary_dir.string();
  replica_options.replica_poll_interval_ms = 0;  // Manual RunOnce().
  replica_options.background_gc_interval_ms = 0;
  replica_options.checkpoint_interval_ms = 0;

  auto primary_opened = GraphDatabase::Open(primary_options);
  ASSERT_TRUE(primary_opened.ok()) << primary_opened.status();
  auto primary = std::move(*primary_opened);

  NodeId key;
  {
    auto txn = primary->Begin();
    auto id = txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    ASSERT_TRUE(id.ok());
    key = *id;
    ASSERT_TRUE(txn->Commit().ok());
  }
  constexpr int64_t kFinal = 24;
  for (int64_t v = 1; v <= kFinal; ++v) {
    auto txn = primary->Begin();
    ASSERT_TRUE(txn->SetNodeProperty(key, "v", PropertyValue(v)).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }

  {
    auto replica_opened = GraphDatabase::Open(replica_options);
    ASSERT_TRUE(replica_opened.ok()) << replica_opened.status();
    auto replica = std::move(*replica_opened);
    fault::CrashPoint eio(replica.get(), "replica.cursor.sync");
    Status s = replica->replica_applier()->RunOnce();
    ASSERT_TRUE(eio.fired()) << "cursor-sync point never reached";
    EXPECT_TRUE(s.IsIOError())
        << "RunOnce must surface the cursor fsync EIO, got " << s.ToString();
    // Kill the replica image with the cursor write in doubt.
  }

  auto replica_opened = GraphDatabase::Open(replica_options);
  ASSERT_TRUE(replica_opened.ok()) << replica_opened.status();
  auto replica = std::move(*replica_opened);
  ASSERT_TRUE(replica->replica_applier()->RunOnce().ok())
      << replica->replica_applier()->last_error();
  {
    TransactionOptions read_opts;
    read_opts.read_only = true;
    auto txn =
        replica->Begin(IsolationLevel::kSnapshotIsolation, read_opts);
    auto got = txn->GetNodeProperty(key, "v");
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(got->AsInt(), kFinal)
        << "replica lost shipped commits across the failed cursor sync";
  }

  replica.reset();
  primary.reset();
  fs::remove_all(base);
}

}  // namespace
}  // namespace neosi
