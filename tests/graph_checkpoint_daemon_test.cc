// CheckpointDaemon pacing: interval passes, WAL-threshold nudges, idle
// skips, WAL growth bounding under write load, and recovery correctness
// when the daemon checkpoints concurrently with committers.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "graph/graph_database.h"

namespace neosi {
namespace {

DatabaseOptions MemOptions() {
  DatabaseOptions options;  // in-memory by default
  options.background_gc_interval_ms = 0;
  return options;
}

bool WaitUntil(const std::function<bool()>& cond, int timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return cond();
}

TEST(CheckpointDaemon, DisabledWhenIntervalZero) {
  auto options = MemOptions();
  options.checkpoint_interval_ms = 0;
  auto db = std::move(*GraphDatabase::Open(options));
  EXPECT_EQ(db->checkpoint_daemon(), nullptr);
  const DatabaseStats stats = db->Stats();
  EXPECT_EQ(stats.checkpoint_daemon_passes, 0u);
}

TEST(CheckpointDaemon, IdleWakeupsSkipWithoutCheckpointing) {
  auto options = MemOptions();
  options.checkpoint_interval_ms = 1;
  options.checkpoint_wal_threshold = 64ull << 20;  // Never reached.
  auto db = std::move(*GraphDatabase::Open(options));
  ASSERT_NE(db->checkpoint_daemon(), nullptr);
  ASSERT_TRUE(WaitUntil(
      [&] { return db->checkpoint_daemon()->idle_skips() >= 3; }));
  const DatabaseStats stats = db->Stats();
  EXPECT_EQ(stats.store.checkpoints, 0u);
  EXPECT_EQ(stats.checkpoint_daemon_passes, 0u);
  EXPECT_GE(stats.checkpoint_daemon_idle_skips, 3u);
}

TEST(CheckpointDaemon, BoundsWalGrowthUnderWriteLoad) {
  auto options = MemOptions();
  options.checkpoint_interval_ms = 2;
  options.checkpoint_wal_threshold = 2048;
  auto db = std::move(*GraphDatabase::Open(options));

  auto setup = db->Begin();
  const NodeId id =
      *setup->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
  ASSERT_TRUE(setup->Commit().ok());

  for (int i = 1; i <= 400; ++i) {
    auto txn = db->Begin();
    ASSERT_TRUE(
        txn->SetNodeProperty(id, "v", PropertyValue(int64_t{i})).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  ASSERT_TRUE(WaitUntil([&] { return db->Stats().store.checkpoints >= 1; }));

  const DatabaseStats stats = db->Stats();
  EXPECT_GE(stats.checkpoint_daemon_passes, 1u);
  EXPECT_GT(stats.store.checkpoint_bytes_truncated, 0u);

  // Quiesced: one manual checkpoint empties the live log entirely.
  ASSERT_TRUE(db->Checkpoint().ok());
  EXPECT_EQ(db->engine().store.wal().SizeBytes(), 0u);
  auto reader = db->Begin();
  EXPECT_EQ(reader->GetNodeProperty(id, "v")->AsInt(), 400);
}

TEST(CheckpointDaemon, CommitPublicationNudgesPastLongInterval) {
  auto options = MemOptions();
  options.checkpoint_interval_ms = 60000;  // Interval alone would never fire.
  options.checkpoint_wal_threshold = 256;
  auto db = std::move(*GraphDatabase::Open(options));

  auto setup = db->Begin();
  const NodeId id =
      *setup->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
  ASSERT_TRUE(setup->Commit().ok());

  for (int i = 0; i < 50; ++i) {
    auto txn = db->Begin();
    ASSERT_TRUE(
        txn->SetNodeProperty(id, "v", PropertyValue(int64_t{i})).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  ASSERT_TRUE(WaitUntil(
      [&] { return db->checkpoint_daemon()->nudge_passes() >= 1; }));
  EXPECT_GE(db->Stats().checkpoint_daemon_nudge_passes, 1u);
}

// On-disk: the daemon checkpoints aggressively while writers commit; after
// reopen every acked value must be present (truncation never drops an
// unapplied record, markers steer replay correctly).
TEST(CheckpointDaemon, RecoveryIsExactUnderConcurrentDaemonCheckpoints) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() /
      ("neosi_ckpt_daemon_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);

  constexpr int kWriters = 3;
  constexpr int kCommitsPerWriter = 80;
  std::vector<NodeId> nodes(kWriters);
  {
    DatabaseOptions options;
    options.in_memory = false;
    options.path = dir.string();
    options.background_gc_interval_ms = 0;
    options.checkpoint_interval_ms = 1;
    options.checkpoint_wal_threshold = 512;
    auto db = std::move(*GraphDatabase::Open(options));
    {
      auto txn = db->Begin();
      for (int w = 0; w < kWriters; ++w) {
        nodes[w] = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{-1})}});
      }
      ASSERT_TRUE(txn->Commit().ok());
    }
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([&, w] {
        for (int i = 0; i < kCommitsPerWriter; ++i) {
          auto txn = db->Begin();
          ASSERT_TRUE(txn->SetNodeProperty(nodes[w], "v",
                                           PropertyValue(int64_t{i}))
                          .ok());
          ASSERT_TRUE(txn->Commit().ok());
        }
      });
    }
    for (auto& t : writers) t.join();
    // The daemon must actually checkpoint under this load (the accumulated
    // WAL is far past the threshold, so a pass is guaranteed to come).
    EXPECT_TRUE(
        WaitUntil([&] { return db->Stats().store.checkpoints >= 1; }));
  }
  {
    DatabaseOptions options;
    options.in_memory = false;
    options.path = dir.string();
    options.background_gc_interval_ms = 0;
    options.checkpoint_interval_ms = 0;
    auto db = std::move(*GraphDatabase::Open(options));
    auto reader = db->Begin();
    for (int w = 0; w < kWriters; ++w) {
      EXPECT_EQ(reader->GetNodeProperty(nodes[w], "v")->AsInt(),
                kCommitsPerWriter - 1)
          << "writer " << w << " lost acked commits across reopen";
    }
  }
  fs::remove_all(dir);
}

// The latent reclamation gap of the pre-rotation WAL, closed: on a
// hole-less backend (the in-memory one — PUNCH_HOLE zeroed bytes but freed
// nothing) the daemon's checkpoints now reclaim by unlinking whole
// segments, so the physical footprint shrinks for real and the lifecycle
// counters prove it was segment reclamation doing the work.
TEST(CheckpointDaemon, ReclaimsWholeSegmentsOnHolelessBackend) {
  auto options = MemOptions();
  options.checkpoint_interval_ms = 1;
  options.checkpoint_wal_threshold = 512;
  options.wal_segment_size = 1024;
  options.wal_recycle_segments = 1;
  auto db = std::move(*GraphDatabase::Open(options));

  auto setup = db->Begin();
  const NodeId id =
      *setup->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
  ASSERT_TRUE(setup->Commit().ok());

  for (int i = 1; i <= 400; ++i) {
    auto txn = db->Begin();
    ASSERT_TRUE(
        txn->SetNodeProperty(id, "v", PropertyValue(int64_t{i})).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  // The workload wrote many segments' worth of log; the daemon must have
  // rotated AND physically retired dead segments (delete or recycle).
  ASSERT_TRUE(WaitUntil([&] {
    const DatabaseStats stats = db->Stats();
    return stats.store.wal_segments_deleted +
               stats.store.wal_segments_recycled >=
           1;
  }));
  const DatabaseStats mid = db->Stats();
  EXPECT_GT(mid.store.wal_segments_created, 1u);

  // Quiesced: one manual checkpoint collapses the chain to a single
  // (bounded) active segment — the footprint is BOUNDED, not hole-punched.
  ASSERT_TRUE(db->Checkpoint().ok());
  const DatabaseStats stats = db->Stats();
  EXPECT_EQ(stats.store.wal_bytes, 0u);
  EXPECT_EQ(stats.store.wal_segments, 1u);
  EXPECT_LE(stats.store.wal_physical_bytes, options.wal_segment_size);
  // Recycling honored its cap.
  EXPECT_LE(stats.store.wal_segments_recycled,
            stats.store.wal_segments_reused + options.wal_recycle_segments);
  auto reader = db->Begin();
  EXPECT_EQ(reader->GetNodeProperty(id, "v")->AsInt(), 400);
}

// Segment pacing: even when the byte threshold is far away, a chain that
// has rolled past a segment nudges the daemon so the cold segment gets
// reclaimed promptly.
TEST(CheckpointDaemon, SegmentRolloverNudgesPastByteThreshold) {
  auto options = MemOptions();
  options.checkpoint_interval_ms = 60000;  // Interval alone would never fire.
  options.checkpoint_wal_threshold = 64ull << 20;  // Bytes alone: never.
  options.wal_segment_size = 1024;
  auto db = std::move(*GraphDatabase::Open(options));

  auto setup = db->Begin();
  const NodeId id =
      *setup->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
  ASSERT_TRUE(setup->Commit().ok());

  for (int i = 0; i < 100; ++i) {
    auto txn = db->Begin();
    ASSERT_TRUE(
        txn->SetNodeProperty(id, "v", PropertyValue(int64_t{i})).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  // The chain rolled (monotonic counter — the daemon may already have
  // reclaimed the cold segments by the time we look at the live count).
  ASSERT_GT(db->Stats().store.wal_segments_created, 1u);
  ASSERT_TRUE(WaitUntil(
      [&] { return db->checkpoint_daemon()->nudge_passes() >= 1; }));
  ASSERT_TRUE(WaitUntil([&] {
    const DatabaseStats stats = db->Stats();
    return stats.store.wal_segments_deleted +
               stats.store.wal_segments_recycled >=
           1;
  }));
}

// The retired stop-the-world checkpoint stays correct (it is the E12 bench
// baseline): full sync + log reset, data preserved.
TEST(CheckpointLegacy, StopTheWorldStillCorrect) {
  auto options = MemOptions();
  options.checkpoint_interval_ms = 0;
  auto db = std::move(*GraphDatabase::Open(options));
  auto txn = db->Begin();
  const NodeId id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{9})}});
  ASSERT_TRUE(txn->Commit().ok());
  ASSERT_GT(db->engine().store.wal().SizeBytes(), 0u);
  ASSERT_TRUE(db->engine().store.CheckpointStopTheWorld().ok());
  EXPECT_EQ(db->engine().store.wal().SizeBytes(), 0u);
  auto reader = db->Begin();
  EXPECT_EQ(reader->GetNodeProperty(id, "v")->AsInt(), 9);
}

}  // namespace
}  // namespace neosi
