// Serializable Snapshot Isolation semantics, anchored on PostgreSQL's
// serializable-parallel.spec — the read-only transaction anomaly example
// from "A Read-Only Transaction Anomaly Under Snapshot Isolation" (O'Neil
// et al.). Bank accounts X and Y are nodes; three sessions:
//
//   s1: reads Y, writes Y=20, commits.
//   s2: reads X and Y, later writes X=-11.
//   s3: read-only, reads X and Y.
//
// Permutation 1 (no s3 read):  s2rx s2ry s1ry s1wy s1c s2wx s2c s3c
//   -> all three commit (the rw-edge s2->s1 alone is not dangerous).
// Permutation 2 (s3 observes s1): s2rx s2ry s1ry s1wy s1c s3r s3c s2wx
//   -> s3 saw Y=20 but not s2's X write, closing the cycle
//      s2 -rw-> s1 -wr-> s3 -rw-> s2; exactly s2 must abort with
//      SerializationFailure. Under plain SI both permutations commit —
//      that contrast is asserted here too.
//
// One modeling note: PostgreSQL takes a transaction's snapshot at its
// first statement, not at BEGIN — s3's snapshot postdates s1's commit in
// permutation 2 because s3r runs after s1c. neosi takes the snapshot at
// Begin(), so each session Begins at its first step to replay the spec
// faithfully.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "graph/graph_database.h"

namespace neosi {
namespace {

std::unique_ptr<GraphDatabase> OpenDb() {
  DatabaseOptions options;
  options.in_memory = true;
  auto db = GraphDatabase::Open(options);
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(*db);
}

struct Accounts {
  NodeId x = kInvalidNodeId;
  NodeId y = kInvalidNodeId;
};

Accounts SetupBank(GraphDatabase& db) {
  Accounts accounts;
  auto txn = db.Begin();
  accounts.x = *txn->CreateNode({"Account"},
                                {{"balance", PropertyValue(int64_t{0})}});
  accounts.y = *txn->CreateNode({"Account"},
                                {{"balance", PropertyValue(int64_t{0})}});
  EXPECT_TRUE(txn->Commit().ok());
  return accounts;
}

int64_t Balance(Transaction& txn, NodeId account) {
  auto v = txn.GetNodeProperty(account, "balance");
  EXPECT_TRUE(v.ok()) << v.status();
  return v.ok() ? v->AsInt() : -1;
}

// permutation "s2rx" "s2ry" "s1ry" "s1wy" "s1c" "s2wx" "s2c" "s3c"
TEST(SsiSemantics, SpecPermutationWithoutS3ReadAllCommit) {
  auto db = OpenDb();
  const Accounts acc = SetupBank(*db);

  auto s2 = db->Begin(IsolationLevel::kSerializable);
  EXPECT_EQ(Balance(*s2, acc.x), 0);  // s2rx
  EXPECT_EQ(Balance(*s2, acc.y), 0);  // s2ry

  auto s1 = db->Begin(IsolationLevel::kSerializable);
  EXPECT_EQ(Balance(*s1, acc.y), 0);  // s1ry
  ASSERT_TRUE(                        // s1wy
      s1->SetNodeProperty(acc.y, "balance", PropertyValue(int64_t{20})).ok());
  ASSERT_TRUE(s1->Commit().ok());     // s1c

  // s2wx: s2's only rw-antidependency is OUT to the already-committed s1;
  // with no in-edge there is no dangerous structure — the write and the
  // commit must both succeed.
  ASSERT_TRUE(
      s2->SetNodeProperty(acc.x, "balance", PropertyValue(int64_t{-11})).ok());
  ASSERT_TRUE(s2->Commit().ok());     // s2c

  auto s3 = db->Begin(IsolationLevel::kSerializable);
  ASSERT_TRUE(s3->Commit().ok());     // s3c (never read anything)

  auto check = db->Begin();
  EXPECT_EQ(Balance(*check, acc.x), -11);
  EXPECT_EQ(Balance(*check, acc.y), 20);
  EXPECT_EQ(db->Stats().ssi_aborts_pivot, 0u);
  EXPECT_EQ(db->Stats().ssi_aborts_doomed, 0u);
}

// permutation "s2rx" "s2ry" "s1ry" "s1wy" "s1c" "s3r" "s3c" "s2wx"
TEST(SsiSemantics, SpecPermutationWithS3ReadAbortsExactlyS2) {
  auto db = OpenDb();
  const Accounts acc = SetupBank(*db);

  auto s2 = db->Begin(IsolationLevel::kSerializable);
  EXPECT_EQ(Balance(*s2, acc.x), 0);  // s2rx
  EXPECT_EQ(Balance(*s2, acc.y), 0);  // s2ry

  auto s1 = db->Begin(IsolationLevel::kSerializable);
  EXPECT_EQ(Balance(*s1, acc.y), 0);  // s1ry
  ASSERT_TRUE(                        // s1wy
      s1->SetNodeProperty(acc.y, "balance", PropertyValue(int64_t{20})).ok());
  ASSERT_TRUE(s1->Commit().ok());     // s1c

  // s3r: begun after s1's commit, so it observes Y=20 — but can never
  // observe s2's X write. Its SIREAD marker on X outlives its commit.
  auto s3 = db->Begin(IsolationLevel::kSerializable);
  EXPECT_EQ(Balance(*s3, acc.x), 0);
  EXPECT_EQ(Balance(*s3, acc.y), 20);
  ASSERT_TRUE(s3->Commit().ok());     // s3c

  // s2wx: the write gives s2 an in-edge from the committed s3 on top of
  // its out-edge to the committed s1 — and s3 committed after s1, so s2 is
  // a dangerous pivot and must abort HERE, with a retryable
  // SerializationFailure.
  Status s = s2->SetNodeProperty(acc.x, "balance", PropertyValue(int64_t{-11}));
  EXPECT_TRUE(s.IsSerializationFailure()) << s;
  EXPECT_TRUE(s.IsRetryable());
  EXPECT_FALSE(s2->IsActive());

  // Exactly s2 aborted: s1's and s3's effects stand, X was never written.
  auto check = db->Begin();
  EXPECT_EQ(Balance(*check, acc.x), 0);
  EXPECT_EQ(Balance(*check, acc.y), 20);
  EXPECT_EQ(db->Stats().ssi_aborts_pivot, 1u);

  // And the retry succeeds: the history minus s2 plus its rerun is serial.
  auto retry = db->Begin(IsolationLevel::kSerializable);
  EXPECT_EQ(Balance(*retry, acc.x), 0);
  EXPECT_EQ(Balance(*retry, acc.y), 20);
  ASSERT_TRUE(
      retry->SetNodeProperty(acc.x, "balance", PropertyValue(int64_t{-11}))
          .ok());
  ASSERT_TRUE(retry->Commit().ok());
}

// The same two permutations under plain kSnapshotIsolation: everything
// commits — the anomaly this suite exists to kill is SI-legal, and SSI
// must not change SI's behavior.
TEST(SsiSemantics, BothSpecPermutationsCommitUnderSnapshotIsolation) {
  for (const bool with_s3_read : {false, true}) {
    auto db = OpenDb();
    const Accounts acc = SetupBank(*db);

    auto s2 = db->Begin(IsolationLevel::kSnapshotIsolation);
    EXPECT_EQ(Balance(*s2, acc.x), 0);
    EXPECT_EQ(Balance(*s2, acc.y), 0);

    auto s1 = db->Begin(IsolationLevel::kSnapshotIsolation);
    EXPECT_EQ(Balance(*s1, acc.y), 0);
    ASSERT_TRUE(
        s1->SetNodeProperty(acc.y, "balance", PropertyValue(int64_t{20}))
            .ok());
    ASSERT_TRUE(s1->Commit().ok());

    if (with_s3_read) {
      auto s3 = db->Begin(IsolationLevel::kSnapshotIsolation);
      EXPECT_EQ(Balance(*s3, acc.x), 0);
      EXPECT_EQ(Balance(*s3, acc.y), 20);  // The anomalous observation.
      ASSERT_TRUE(s3->Commit().ok());
    }

    ASSERT_TRUE(
        s2->SetNodeProperty(acc.x, "balance", PropertyValue(int64_t{-11}))
            .ok());
    ASSERT_TRUE(s2->Commit().ok());

    auto check = db->Begin();
    EXPECT_EQ(Balance(*check, acc.x), -11);
    EXPECT_EQ(Balance(*check, acc.y), 20);
    // SI never touches the tracker at all.
    EXPECT_EQ(db->Stats().ssi_tracked_txns, 0u);
  }
}

// --- Safe snapshots ---------------------------------------------------------

// A read-only serializable transaction whose snapshot sees no concurrent
// read-write serializable transaction skips tracking entirely: it can
// never observe a dangerous structure, so it must run abort-free.
TEST(SsiSemantics, ReadOnlySafeSnapshotSkipsTrackingAndNeverAborts) {
  auto db = OpenDb();
  const Accounts acc = SetupBank(*db);

  TransactionOptions ro;
  ro.read_only = true;
  auto reader = db->Begin(IsolationLevel::kSerializable, ro);
  EXPECT_EQ(Balance(*reader, acc.x), 0);
  EXPECT_EQ(Balance(*reader, acc.y), 0);

  // Writes are rejected up front — the safe-snapshot promise depends on it.
  Status w =
      reader->SetNodeProperty(acc.x, "balance", PropertyValue(int64_t{1}));
  EXPECT_TRUE(w.IsFailedPrecondition()) << w;
  EXPECT_TRUE(reader->CreateNode({"Account"}).status().IsFailedPrecondition());

  ASSERT_TRUE(reader->Commit().ok());
  const DatabaseStats stats = db->Stats();
  EXPECT_GE(stats.ssi_safe_snapshots, 1u);
  EXPECT_EQ(stats.ssi_aborts_pivot, 0u);
  EXPECT_EQ(stats.ssi_aborts_doomed, 0u);
}

// With a read-write serializable transaction in flight, the read-only
// transaction's snapshot is NOT safe — it must be tracked (it could be the
// s3 of a read-only anomaly) but stays write-rejected.
TEST(SsiSemantics, ReadOnlyUnsafeSnapshotFallsBackToTracking) {
  auto db = OpenDb();
  const Accounts acc = SetupBank(*db);

  auto writer = db->Begin(IsolationLevel::kSerializable);
  EXPECT_EQ(Balance(*writer, acc.x), 0);

  TransactionOptions ro;
  ro.read_only = true;
  auto reader = db->Begin(IsolationLevel::kSerializable, ro);
  EXPECT_EQ(Balance(*reader, acc.y), 0);
  EXPECT_TRUE(reader
                  ->SetNodeProperty(acc.y, "balance", PropertyValue(int64_t{1}))
                  .IsFailedPrecondition());
  ASSERT_TRUE(reader->Commit().ok());
  ASSERT_TRUE(writer->Commit().ok());

  const DatabaseStats stats = db->Stats();
  EXPECT_EQ(stats.ssi_safe_snapshots, 0u);
  EXPECT_GE(stats.ssi_tracked_txns, 2u);
}

// The safe-snapshot acceptance property under churn: a stream of read-only
// serializable transactions interleaved with non-serializable writers (SI
// writers are invisible to the tracker) completes with zero
// SerializationFailure aborts and every snapshot safe.
TEST(SsiSemantics, SafeSnapshotReadOnlyStreamNeverSeesSerializationFailure) {
  auto db = OpenDb();
  const Accounts acc = SetupBank(*db);

  TransactionOptions ro;
  ro.read_only = true;
  for (int i = 0; i < 50; ++i) {
    {
      auto writer = db->Begin(IsolationLevel::kSnapshotIsolation);
      ASSERT_TRUE(writer
                      ->SetNodeProperty(acc.x, "balance",
                                        PropertyValue(int64_t{i}))
                      .ok());
      ASSERT_TRUE(writer->Commit().ok());
    }
    auto reader = db->Begin(IsolationLevel::kSerializable, ro);
    EXPECT_EQ(Balance(*reader, acc.x), i);
    Status s = reader->Commit();
    ASSERT_TRUE(s.ok()) << s;
    ASSERT_FALSE(s.IsSerializationFailure());
  }
  const DatabaseStats stats = db->Stats();
  EXPECT_EQ(stats.ssi_safe_snapshots, 50u);
  EXPECT_EQ(stats.ssi_aborts_pivot, 0u);
  EXPECT_EQ(stats.ssi_aborts_doomed, 0u);
}

// --- Deterministic write skew under SSI -------------------------------------

// The classic two-account constraint (x + y >= 0, both withdraw): under SI
// both commit and the constraint breaks; under SSI the second committer
// must fail with a retryable SerializationFailure.
TEST(SsiSemantics, WriteSkewSecondCommitterAborts) {
  auto db = OpenDb();
  const Accounts acc = SetupBank(*db);
  {
    auto txn = db->Begin();
    ASSERT_TRUE(
        txn->SetNodeProperty(acc.x, "balance", PropertyValue(int64_t{50}))
            .ok());
    ASSERT_TRUE(
        txn->SetNodeProperty(acc.y, "balance", PropertyValue(int64_t{50}))
            .ok());
    ASSERT_TRUE(txn->Commit().ok());
  }

  auto t1 = db->Begin(IsolationLevel::kSerializable);
  auto t2 = db->Begin(IsolationLevel::kSerializable);
  ASSERT_EQ(Balance(*t1, acc.x) + Balance(*t1, acc.y), 100);
  ASSERT_EQ(Balance(*t2, acc.x) + Balance(*t2, acc.y), 100);
  // Each withdraws 100 from "its" account, justified by the joint balance.
  ASSERT_TRUE(
      t1->SetNodeProperty(acc.x, "balance", PropertyValue(int64_t{-50})).ok());
  ASSERT_TRUE(
      t2->SetNodeProperty(acc.y, "balance", PropertyValue(int64_t{-50})).ok());

  // First committer wins; it dooms the other side of the 2-cycle.
  ASSERT_TRUE(t1->Commit().ok());
  Status s = t2->Commit();
  EXPECT_TRUE(s.IsSerializationFailure()) << s;
  EXPECT_TRUE(s.IsRetryable());

  // The constraint survived.
  auto check = db->Begin();
  EXPECT_GE(Balance(*check, acc.x) + Balance(*check, acc.y), 0);
  EXPECT_GE(db->Stats().ssi_aborts_doomed, 1u);
}

// Predicate (index-range) reads carry SIREAD markers too: a serializable
// label scan followed by a concurrent committed insert into that label
// creates the same dangerous structure as an entity read — phantom-based
// write skew must also abort.
TEST(SsiSemantics, LabelScanPredicateWriteSkewAborts) {
  auto db = OpenDb();
  {
    auto txn = db->Begin();
    ASSERT_TRUE(txn->CreateNode({"OnCall"}).ok());
    ASSERT_TRUE(txn->CreateNode({"OnCall"}).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }

  // Both transactions check "at least one other doctor stays on call",
  // then take themselves off (delete one OnCall node each).
  auto t1 = db->Begin(IsolationLevel::kSerializable);
  auto t2 = db->Begin(IsolationLevel::kSerializable);
  auto on_call_1 = t1->GetNodesByLabel("OnCall");
  auto on_call_2 = t2->GetNodesByLabel("OnCall");
  ASSERT_TRUE(on_call_1.ok());
  ASSERT_TRUE(on_call_2.ok());
  ASSERT_EQ(on_call_1->size(), 2u);
  ASSERT_EQ(on_call_2->size(), 2u);

  ASSERT_TRUE(t1->RemoveLabel((*on_call_1)[0], "OnCall").ok());
  ASSERT_TRUE(t2->RemoveLabel((*on_call_2)[1], "OnCall").ok());

  ASSERT_TRUE(t1->Commit().ok());
  Status s = t2->Commit();
  EXPECT_TRUE(s.IsSerializationFailure()) << s;

  // Someone is still on call.
  auto check = db->Begin();
  EXPECT_EQ(check->GetNodesByLabel("OnCall")->size(), 1u);
}

// --- Safe-snapshot / commit-publication race --------------------------------

// A read-write serializable commit finishes the SSI tracker (dropping the
// active-peer count) strictly before the oracle publishes its commit
// timestamp. A read-only serializable transaction that Begins inside that
// window gets a snapshot PREDATING the commit while seeing zero active
// peers — its snapshot is concurrent with the commit and must NOT be
// deemed safe. The stall hook parks the committer exactly in the window.
TEST(SsiSemantics, ReadOnlyBeginningBeforeCommitPublicationIsNotSafe) {
  auto db = OpenDb();
  const Accounts acc = SetupBank(*db);
  auto& hooks = db->engine().test_hooks;

  hooks.stall_before_publication.store(true);
  std::thread committer([&] {
    auto w = db->Begin(IsolationLevel::kSerializable);
    EXPECT_TRUE(
        w->SetNodeProperty(acc.x, "balance", PropertyValue(int64_t{10})).ok());
    EXPECT_TRUE(w->Commit().ok());  // Parks after tracker-finish,
  });                               // before publication.
  while (hooks.stalled_publications.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const uint64_t safe_before = db->Stats().ssi_safe_snapshots;
  TransactionOptions ro;
  ro.read_only = true;
  auto reader = db->Begin(IsolationLevel::kSerializable, ro);
  // The snapshot predates the stalled commit...
  EXPECT_EQ(Balance(*reader, acc.x), 0);
  // ...so it was NOT taken on the safe-snapshot fast path: the reader is
  // tracked and can still be the s3 of a read-only anomaly.
  EXPECT_EQ(db->Stats().ssi_safe_snapshots, safe_before);

  hooks.stall_before_publication.store(false);
  committer.join();
  ASSERT_TRUE(reader->Commit().ok());

  // Once the commit is published, fresh read-only snapshots cover it and
  // the fast path reopens.
  auto reader2 = db->Begin(IsolationLevel::kSerializable, ro);
  EXPECT_EQ(Balance(*reader2, acc.x), 10);
  EXPECT_EQ(db->Stats().ssi_safe_snapshots, safe_before + 1);
}

// --- Durable commits that fail store-apply ----------------------------------

// Once the WAL commit record is durable the transaction IS committed —
// recovery will replay it — even if applying to the in-memory stores then
// fails. Its SSI record must be published as committed too: peers that saw
// its SIREAD markers would otherwise treat the rw-antidependency as gone
// and commit over a dangerous structure.
TEST(SsiSemantics, DurableCommitWithFailedStoreApplyStillGatesPeers) {
  auto db = OpenDb();
  const Accounts acc = SetupBank(*db);
  NodeId z;
  {
    auto setup = db->Begin();
    z = *setup->CreateNode({"Account"},
                           {{"balance", PropertyValue(int64_t{0})}});
    ASSERT_TRUE(setup->Commit().ok());
  }

  // w will be the pivot: snapshot predates both commits below.
  auto w = db->Begin(IsolationLevel::kSerializable);

  // p reads X (SIREAD marker) and writes Y.
  auto p = db->Begin(IsolationLevel::kSerializable);
  EXPECT_EQ(Balance(*p, acc.x), 0);
  ASSERT_TRUE(
      p->SetNodeProperty(acc.y, "balance", PropertyValue(int64_t{7})).ok());

  // o writes Z and commits first (the out-neighbor of the pivot).
  {
    auto o = db->Begin(IsolationLevel::kSerializable);
    ASSERT_TRUE(
        o->SetNodeProperty(z, "balance", PropertyValue(int64_t{5})).ok());
    ASSERT_TRUE(o->Commit().ok());
  }

  // p's commit record reaches the WAL, then store-apply "crashes". The
  // commit is durable; Commit reports IOError but p is committed.
  db->engine().test_hooks.crash_before_store_apply.store(true);
  Status ps = p->Commit();
  EXPECT_TRUE(ps.IsIOError()) << ps;
  db->engine().test_hooks.crash_before_store_apply.store(false);
  // Destroying p must not flip its SSI record to aborted.
  p.reset();

  // w reads Z under its old snapshot (rw out-edge w -> o, o committed
  // first) and then overwrites X, which committed-p read (rw in-edge
  // p -> w): w is a pivot between two committed peers and must fail.
  EXPECT_EQ(Balance(*w, z), 0);
  Status s = w->SetNodeProperty(acc.x, "balance", PropertyValue(int64_t{1}));
  if (s.ok()) s = w->Commit();
  EXPECT_TRUE(s.IsSerializationFailure()) << s;
}

// --- Equal-value no-op writes -----------------------------------------------

// Setting a property to the value it already has leaves no WAL op, no new
// version, and — critically — no SSI write footprint: a write that changes
// nothing cannot create an rw-antidependency, so a "write skew" made of
// two no-op writes must commit on both sides.
TEST(SsiSemantics, EqualValueNoOpWritesLeaveNoSsiFootprint) {
  auto db = OpenDb();
  const Accounts acc = SetupBank(*db);

  auto t1 = db->Begin(IsolationLevel::kSerializable);
  auto t2 = db->Begin(IsolationLevel::kSerializable);
  EXPECT_EQ(Balance(*t1, acc.x), 0);
  EXPECT_EQ(Balance(*t1, acc.y), 0);
  EXPECT_EQ(Balance(*t2, acc.x), 0);
  EXPECT_EQ(Balance(*t2, acc.y), 0);
  // The classic skew shape, except both writes re-store the present value.
  ASSERT_TRUE(
      t1->SetNodeProperty(acc.x, "balance", PropertyValue(int64_t{0})).ok());
  ASSERT_TRUE(
      t2->SetNodeProperty(acc.y, "balance", PropertyValue(int64_t{0})).ok());

  ASSERT_TRUE(t1->Commit().ok());
  Status s = t2->Commit();
  EXPECT_TRUE(s.ok()) << s;

  const DatabaseStats stats = db->Stats();
  EXPECT_EQ(stats.ssi_aborts_pivot, 0u);
  EXPECT_EQ(stats.ssi_aborts_doomed, 0u);
}

}  // namespace
}  // namespace neosi
