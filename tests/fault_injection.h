// Reusable crash-point fault-injection harness for the WAL / checkpoint /
// recovery stack.
//
// The model (in the black-box spirit of Huang et al., "Efficient Black-box
// Checking of Snapshot Isolation in Databases"): a SHADOW MODEL tracks, for
// every key, the last value whose commit was ACKED to the client. A crash
// point is armed at one of the named sites in the WAL or checkpoint path
// ("wal.append.mid_frame", "wal.segment.post_create",
// "wal.truncate.pre_unlink", "checkpoint.pre_marker",
// "checkpoint.post_marker"); the workload runs until the injection fires
// (the in-flight operation fails exactly as if the process died there — no
// further writes happen on that path), the database object is destroyed
// WITHOUT any clean-shutdown work, and a fresh open recovers from the files
// alone. After every recovery the harness asserts:
//
//   - every acked commit's value is exactly what the shadow model says
//     (durability: acked == recovered), and
//   - the single in-flight transaction at the crash is all-or-nothing: its
//     key reads either the pre-crash shadow value or the new value (then
//     folded into the shadow — it WAS durably logged, so it must keep
//     surviving subsequent crashes).
//
// Tiny WAL segments force rotation to happen constantly under the workload,
// so every crash point is exercised against a chain that is mid-rotation,
// and periodic checkpoints make truncation/marker crashes reachable.

#ifndef NEOSI_TESTS_FAULT_INJECTION_H_
#define NEOSI_TESTS_FAULT_INJECTION_H_

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph_database.h"

namespace neosi {
namespace fault {

/// Every named crash point the WAL / checkpoint path exposes.
inline const std::vector<std::string>& AllCrashPoints() {
  static const std::vector<std::string> points = {
      "wal.append.mid_frame",       // Torn frame: half the record's bytes.
      "wal.segment.post_create",    // New segment durable, not yet active.
      "wal.append.fail_after_roll", // Rolled, then the frame write died.
      "wal.truncate.pre_unlink",    // Head advanced, dead segments remain.
      "checkpoint.pre_marker",      // Stores synced, marker never written.
      "checkpoint.post_marker",     // Marker durable, truncation never ran.
  };
  return points;
}

/// Every named EIO point on the commit-I/O path: the fsync/dir-sync sites
/// where the kernel can report a write-back error. Unlike the crash points
/// above, the process SURVIVES an injected EIO — the sticky-poison contract
/// (see Wal) is what keeps survival safe: the failed sync may have lost
/// dirty pages (the harness's Wal simulates exactly that), so every later
/// commit must fail until a reopen re-reads what is really on disk.
inline const std::vector<std::string>& AllEioPoints() {
  static const std::vector<std::string> points = {
      "wal.sync.fail",        // fsync of the active segment.
      "wal.sync.retiring",    // fsync of a full segment at roll.
      "wal.dirsync.create",   // Directory sync publishing a fresh segment.
      "wal.dirsync.rename",   // Directory sync publishing an adoption.
      "wal.dirsync.unlink",   // Directory sync retiring dead segments.
  };
  return points;
}

/// Arms one named crash point on a database: the Nth time execution reaches
/// it, the operation fails with IOError as if the process died there.
/// Install immediately after open; the database must be discarded after the
/// injection fires.
class CrashPoint {
 public:
  CrashPoint(GraphDatabase* db, std::string point, uint64_t fire_on_hit = 1)
      : state_(std::make_shared<State>(std::move(point), fire_on_hit)) {
    // The hook owns the state via shared_ptr: the WAL flusher thread may
    // still be evaluating it after this CrashPoint object goes out of
    // scope (the database outlives the arming object in every harness).
    auto state = state_;
    auto fn = [state](const char* at) -> Status {
      if (state->point != at) return Status::OK();
      if (state->hits.fetch_add(1, std::memory_order_acq_rel) + 1 !=
          state->fire_on_hit) {
        return Status::OK();
      }
      state->fired.store(true, std::memory_order_release);
      return Status::IOError("injected crash at " + state->point);
    };
    db->engine().store.fault_hooks.Set(fn);
    db->engine().store.wal().fault_hooks.Set(fn);
  }

  bool fired() const { return state_->fired.load(std::memory_order_acquire); }
  uint64_t hits() const { return state_->hits.load(std::memory_order_acquire); }

 private:
  struct State {
    State(std::string p, uint64_t n) : point(std::move(p)), fire_on_hit(n) {}
    const std::string point;
    const uint64_t fire_on_hit;
    std::atomic<uint64_t> hits{0};
    std::atomic<bool> fired{false};
  };
  const std::shared_ptr<State> state_;
};

/// Kill-and-recover loop over an on-disk database with a shadow model.
class CrashLoopHarness {
 public:
  struct Options {
    int keys = 4;
    int rounds = 6;
    int txns_per_round = 40;
    /// Manual checkpoint cadence inside a round (reaches the marker /
    /// truncation crash points deterministically).
    int checkpoint_every = 7;
    /// Tiny segments: the workload rotates the chain many times per round.
    uint64_t wal_segment_size = 2048;
    uint64_t wal_recycle_segments = 1;
    bool sync_commits = true;
    /// Isolation every harness transaction runs under (the EIO matrix runs
    /// each point under both SI and Serializable — the SSI commit path
    /// takes extra locks around the WAL append and must observe the same
    /// fail-before-ack contract).
    IsolationLevel isolation = IsolationLevel::kSnapshotIsolation;
    /// Commit I/O mode (both combinations of flusher-owned fsync and
    /// off-path pre-allocation are valid; EIO semantics must be identical).
    bool wal_async_flush = true;
    bool wal_preallocate = true;
  };

  explicit CrashLoopHarness(std::filesystem::path dir)
      : CrashLoopHarness(std::move(dir), Options()) {}

  CrashLoopHarness(std::filesystem::path dir, Options options)
      : dir_(std::move(dir)), options_(options) {
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }

  ~CrashLoopHarness() { std::filesystem::remove_all(dir_); }

  DatabaseOptions DbOptions() const {
    DatabaseOptions options;
    options.in_memory = false;
    options.path = dir_.string();
    options.background_gc_interval_ms = 0;  // Deterministic: no daemons.
    options.checkpoint_interval_ms = 0;
    options.sync_commits = options_.sync_commits;
    options.wal_segment_size = options_.wal_segment_size;
    options.wal_recycle_segments = options_.wal_recycle_segments;
    options.default_isolation = options_.isolation;
    options.wal_async_flush = options_.wal_async_flush;
    options.wal_preallocate = options_.wal_preallocate;
    return options;
  }

  /// Runs `rounds` kill-and-recover rounds with `point` armed to fire mid-
  /// round (the hit index varies per round so successive crashes land at
  /// different states of the chain). Each round re-opens the store, checks
  /// recovered state against the shadow model, then commits until the
  /// injection kills it again.
  void Run(const std::string& point) {
    for (int round = 0; round < options_.rounds; ++round) {
      auto opened = GraphDatabase::Open(DbOptions());
      ASSERT_TRUE(opened.ok()) << "round " << round << ": " << opened.status();
      auto db = std::move(*opened);
      SeedIfNeeded(db.get());
      VerifyRecovered(db.get(), round);
      if (::testing::Test::HasFatalFailure()) return;

      // Vary where in the round the crash lands.
      CrashPoint crash(db.get(), point, /*fire_on_hit=*/1 + (round % 3));
      for (int i = 0; i < options_.txns_per_round; ++i) {
        const NodeId key = keys_[static_cast<size_t>(i) % keys_.size()];
        const int64_t value = static_cast<int64_t>(next_value_++);
        auto txn = db->Begin();
        ASSERT_TRUE(
            txn->SetNodeProperty(key, "v", PropertyValue(value)).ok());
        Status s = txn->Commit();
        if (s.ok()) {
          shadow_[key] = value;
        } else {
          // The injected crash killed this commit in flight: its record may
          // or may not have reached the log — recovery decides, and the
          // outcome must be all-or-nothing.
          pending_ = {key, value};
          break;
        }
        if (options_.checkpoint_every > 0 &&
            (i + 1) % options_.checkpoint_every == 0) {
          // A checkpoint that dies at an injected point changes no logical
          // state; the kill-and-reopen below exercises recovery from it.
          if (!db->Checkpoint().ok()) break;
        }
      }
      // Kill: destroy the database with no clean-shutdown work (the
      // destructor only joins daemons, which are disabled here).
    }
    // Final recovery after the last kill.
    auto opened = GraphDatabase::Open(DbOptions());
    ASSERT_TRUE(opened.ok()) << opened.status();
    auto db = std::move(*opened);
    SeedIfNeeded(db.get());
    VerifyRecovered(db.get(), options_.rounds);
  }

  /// EIO mode: arms `point` to fail once with EIO, but the process keeps
  /// running (the fsyncgate scenario — a kernel write-back error, not a
  /// crash). Each round asserts the sticky-failure contract end to end:
  ///
  ///   1. the first operation through the armed point fails BEFORE acking
  ///      (a commit that returns an error must be all-or-nothing, exactly
  ///      like a crash, because the Wal drops the unsynced suffix);
  ///   2. the WAL is poisoned from that moment on, and every subsequent
  ///      commit fails with a non-retryable IOError — a later fsync
  ///      returning success must never re-ack data the kernel dropped;
  ///   3. kill + reopen recovers exactly the acked prefix (shadow model).
  void RunEio(const std::string& point) {
    for (int round = 0; round < options_.rounds; ++round) {
      auto opened = GraphDatabase::Open(DbOptions());
      ASSERT_TRUE(opened.ok()) << "round " << round << ": " << opened.status();
      auto db = std::move(*opened);
      SeedIfNeeded(db.get());
      VerifyRecovered(db.get(), round);
      if (::testing::Test::HasFatalFailure()) return;

      CrashPoint eio(db.get(), point, /*fire_on_hit=*/1 + (round % 3));
      bool failed = false;
      for (int i = 0; i < options_.txns_per_round && !failed; ++i) {
        const NodeId key = keys_[static_cast<size_t>(i) % keys_.size()];
        const int64_t value = static_cast<int64_t>(next_value_++);
        auto txn = db->Begin();
        ASSERT_TRUE(
            txn->SetNodeProperty(key, "v", PropertyValue(value)).ok());
        Status s = txn->Commit();
        if (s.ok()) {
          shadow_[key] = value;
        } else {
          // Fail-before-ack: recovery decides all-or-nothing for this one
          // commit, like any crash.
          pending_ = {key, value};
          failed = true;
          break;
        }
        if (options_.checkpoint_every > 0 &&
            (i + 1) % options_.checkpoint_every == 0) {
          // Truncation / marker syncs can be the first to hit the point
          // (e.g. wal.dirsync.unlink only exists on this path). A failed
          // checkpoint acks nothing, so there is no pending entry — but it
          // must poison all the same.
          if (!db->Checkpoint().ok()) failed = true;
        }
      }

      if (failed) {
        // Sticky: the store object is now unusable for writes. Every
        // retry must fail non-retryably until the store is reopened.
        EXPECT_TRUE(db->engine().store.wal().poisoned())
            << "round " << round << ": " << point
            << " failed an operation without poisoning the WAL";
        for (int attempt = 0; attempt < 4; ++attempt) {
          const NodeId key = keys_[static_cast<size_t>(attempt) % keys_.size()];
          const int64_t value = static_cast<int64_t>(next_value_++);
          auto txn = db->Begin();
          ASSERT_TRUE(
              txn->SetNodeProperty(key, "v", PropertyValue(value)).ok());
          Status s = txn->Commit();
          EXPECT_TRUE(s.IsIOError())
              << "round " << round << ", retry " << attempt << ": commit "
              << (s.ok() ? "was ACKED" : "failed retryably") << " on a "
              << "poisoned WAL (" << s.ToString() << ")";
          ASSERT_FALSE(s.ok());  // An acked-on-poison commit would also
                                 // corrupt the shadow model below.
        }
      }
      // Kill: destroy without clean-shutdown work; reopen at the top of
      // the next round verifies no acked commit was lost.
    }
    auto opened = GraphDatabase::Open(DbOptions());
    ASSERT_TRUE(opened.ok()) << opened.status();
    auto db = std::move(*opened);
    SeedIfNeeded(db.get());
    VerifyRecovered(db.get(), options_.rounds);
  }

  /// Sum of the on-disk bytes of every WAL file (chain + recycle pool) —
  /// the physical footprint segment rotation is supposed to bound.
  uint64_t WalDiskBytes() const {
    uint64_t total = 0;
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("wal.", 0) == 0) {
        const auto size = std::filesystem::file_size(entry, ec);
        // A segment unlinked between readdir and stat (daemon truncation
        // races the sampler) must not throw or poison the gauge.
        if (ec) {
          ec.clear();
          continue;
        }
        total += static_cast<uint64_t>(size);
      }
    }
    return total;
  }

  const std::vector<NodeId>& keys() const { return keys_; }
  const std::map<NodeId, int64_t>& shadow() const { return shadow_; }

  /// Records an externally acked commit in the shadow model (for tests that
  /// drive their own workload but reuse the harness's verification).
  void RecordAck(NodeId key, int64_t value) { shadow_[key] = value; }

  /// Seeds the key set on the first open (committed through the normal
  /// path, so it participates in the shadow model like any other commit).
  void SeedIfNeeded(GraphDatabase* db) {
    if (!keys_.empty()) return;
    auto txn = db->Begin();
    for (int i = 0; i < options_.keys; ++i) {
      auto id = txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
      ASSERT_TRUE(id.ok());
      keys_.push_back(*id);
    }
    ASSERT_TRUE(txn->Commit().ok());
    for (NodeId key : keys_) shadow_[key] = 0;
  }

  /// Asserts the recovered state equals the shadow model, resolving the
  /// in-flight transaction of the previous crash all-or-nothing.
  void VerifyRecovered(GraphDatabase* db, int round) {
    auto reader = db->Begin();
    if (pending_.has_value()) {
      const auto [key, value] = *pending_;
      auto got = reader->GetNodeProperty(key, "v");
      ASSERT_TRUE(got.ok()) << "round " << round;
      const int64_t old_value = shadow_.at(key);
      ASSERT_TRUE(got->AsInt() == old_value || got->AsInt() == value)
          << "round " << round << ": in-flight txn on key " << key
          << " recovered to " << got->AsInt() << ", expected all ("
          << value << ") or nothing (" << old_value << ")";
      // Whatever recovery decided is now durable history.
      shadow_[key] = got->AsInt();
      pending_.reset();
    }
    for (const auto& [key, value] : shadow_) {
      auto got = reader->GetNodeProperty(key, "v");
      ASSERT_TRUE(got.ok()) << "round " << round << ", key " << key;
      ASSERT_EQ(got->AsInt(), value)
          << "round " << round << ": acked commit lost on key " << key;
    }
  }

 private:
  std::filesystem::path dir_;
  Options options_;
  std::vector<NodeId> keys_;
  /// key -> last ACKED value (what recovery must reproduce).
  std::map<NodeId, int64_t> shadow_;
  /// The one in-flight transaction at the injected crash.
  std::optional<std::pair<NodeId, int64_t>> pending_;
  uint64_t next_value_ = 1;
};

}  // namespace fault
}  // namespace neosi

#endif  // NEOSI_TESTS_FAULT_INJECTION_H_
