// PagedFile backends: in-memory and POSIX.

#include <gtest/gtest.h>

#include <filesystem>

#include "storage/paged_file.h"

namespace neosi {
namespace {

TEST(InMemoryFile, ReadWriteRoundTrip) {
  InMemoryFile file;
  EXPECT_EQ(file.Size(), 0u);
  ASSERT_TRUE(file.WriteAt(0, "hello", 5).ok());
  EXPECT_EQ(file.Size(), 5u);
  char buf[5];
  ASSERT_TRUE(file.ReadAt(0, 5, buf).ok());
  EXPECT_EQ(std::string(buf, 5), "hello");
}

TEST(InMemoryFile, WriteBeyondEndZeroFills) {
  InMemoryFile file;
  ASSERT_TRUE(file.WriteAt(10, "x", 1).ok());
  EXPECT_EQ(file.Size(), 11u);
  char buf[10];
  ASSERT_TRUE(file.ReadAt(0, 10, buf).ok());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(buf[i], '\0') << i;
}

TEST(InMemoryFile, ReadPastEndFails) {
  InMemoryFile file;
  ASSERT_TRUE(file.WriteAt(0, "abc", 3).ok());
  char buf[4];
  EXPECT_TRUE(file.ReadAt(0, 4, buf).IsOutOfRange());
  EXPECT_TRUE(file.ReadAt(3, 1, buf).IsOutOfRange());
}

TEST(InMemoryFile, TruncateShrinksAndGrows) {
  InMemoryFile file;
  ASSERT_TRUE(file.WriteAt(0, "abcdef", 6).ok());
  ASSERT_TRUE(file.Truncate(3).ok());
  EXPECT_EQ(file.Size(), 3u);
  ASSERT_TRUE(file.Truncate(8).ok());
  EXPECT_EQ(file.Size(), 8u);
  char buf[8];
  ASSERT_TRUE(file.ReadAt(0, 8, buf).ok());
  EXPECT_EQ(std::string(buf, 3), "abc");
  EXPECT_EQ(buf[5], '\0');
}

class PosixFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("neosi_pf_" + std::string(::testing::UnitTest::GetInstance()
                                           ->current_test_info()
                                           ->name()));
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::filesystem::path path_;
};

TEST_F(PosixFileTest, CreatesAndPersists) {
  {
    std::unique_ptr<PagedFile> file;
    ASSERT_TRUE(PosixFile::Open(path_.string(), &file).ok());
    ASSERT_TRUE(file->WriteAt(0, "durable", 7).ok());
    ASSERT_TRUE(file->Sync().ok());
  }
  std::unique_ptr<PagedFile> reopened;
  ASSERT_TRUE(PosixFile::Open(path_.string(), &reopened).ok());
  EXPECT_EQ(reopened->Size(), 7u);
  char buf[7];
  ASSERT_TRUE(reopened->ReadAt(0, 7, buf).ok());
  EXPECT_EQ(std::string(buf, 7), "durable");
}

TEST_F(PosixFileTest, SparseWriteAndTruncate) {
  std::unique_ptr<PagedFile> file;
  ASSERT_TRUE(PosixFile::Open(path_.string(), &file).ok());
  ASSERT_TRUE(file->WriteAt(1000, "tail", 4).ok());
  EXPECT_EQ(file->Size(), 1004u);
  char buf[4];
  ASSERT_TRUE(file->ReadAt(500, 4, buf).ok());  // Hole reads as zeros.
  EXPECT_EQ(std::string(buf, 4), std::string(4, '\0'));
  ASSERT_TRUE(file->Truncate(100).ok());
  EXPECT_EQ(file->Size(), 100u);
  EXPECT_TRUE(file->ReadAt(1000, 4, buf).IsOutOfRange());
}

TEST_F(PosixFileTest, OpenFactorySelectsBackend) {
  std::unique_ptr<PagedFile> mem;
  ASSERT_TRUE(OpenPagedFile("ignored", /*in_memory=*/true, &mem).ok());
  ASSERT_TRUE(mem->WriteAt(0, "m", 1).ok());
  EXPECT_EQ(mem->Size(), 1u);

  std::unique_ptr<PagedFile> disk;
  ASSERT_TRUE(
      OpenPagedFile(path_.string(), /*in_memory=*/false, &disk).ok());
  ASSERT_TRUE(disk->WriteAt(0, "d", 1).ok());
  EXPECT_TRUE(std::filesystem::exists(path_));
}

TEST_F(PosixFileTest, OpenFailsOnBadPath) {
  std::unique_ptr<PagedFile> file;
  EXPECT_TRUE(
      PosixFile::Open("/nonexistent-dir-xyz/file", &file).IsIOError());
}

// ---------------------------------------------------------------------------
// Dirty tracking (fuzzy checkpoints sync only files that changed)
// ---------------------------------------------------------------------------

TEST(DirtyTracking, WritesDirtyAndSyncIfDirtyClears) {
  InMemoryFile file;
  EXPECT_FALSE(file.dirty());
  auto r = file.SyncIfDirty();
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);  // Clean: no sync ran.

  ASSERT_TRUE(file.WriteAt(0, "abc", 3).ok());
  EXPECT_TRUE(file.dirty());
  r = file.SyncIfDirty();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);  // Dirty: sync ran.
  EXPECT_FALSE(file.dirty());

  // Truncate dirties too (it mutates persistent length).
  ASSERT_TRUE(file.Truncate(1).ok());
  EXPECT_TRUE(file.dirty());
}

TEST_F(PosixFileTest, DirtyTrackingAcrossWriteSyncCycles) {
  std::unique_ptr<PagedFile> file;
  ASSERT_TRUE(PosixFile::Open(path_.string(), &file).ok());
  EXPECT_FALSE(file->dirty());
  ASSERT_TRUE(file->WriteAt(0, "xyz", 3).ok());
  EXPECT_TRUE(file->dirty());
  auto r = file->SyncIfDirty();
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
  r = file->SyncIfDirty();
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);  // Second checkpoint skips the clean file.
}

TEST(PunchHole, InMemoryZeroesRange) {
  InMemoryFile file;
  ASSERT_TRUE(file.WriteAt(0, "abcdefgh", 8).ok());
  ASSERT_TRUE(file.PunchHole(2, 4).ok());
  char buf[8];
  ASSERT_TRUE(file.ReadAt(0, 8, buf).ok());
  EXPECT_EQ(std::string(buf, 8), std::string("ab\0\0\0\0gh", 8));
  EXPECT_EQ(file.Size(), 8u);  // KEEP_SIZE semantics.
  // Punching past the end is harmless.
  ASSERT_TRUE(file.PunchHole(100, 10).ok());
}

TEST_F(PosixFileTest, PunchHoleKeepsSizeAndReadsZeros) {
  std::unique_ptr<PagedFile> file;
  ASSERT_TRUE(PosixFile::Open(path_.string(), &file).ok());
  std::string data(8192, 'x');
  ASSERT_TRUE(file->WriteAt(0, data.data(), data.size()).ok());
  ASSERT_TRUE(file->PunchHole(0, 4096).ok());
  EXPECT_EQ(file->Size(), 8192u);
  char buf[16];
  ASSERT_TRUE(file->ReadAt(4096, 16, buf).ok());
  EXPECT_EQ(std::string(buf, 16), std::string(16, 'x'));
  // PunchHole is advisory: where the filesystem supports holes the range
  // reads zeros; where it does not, the bytes are simply untouched.
  ASSERT_TRUE(file->ReadAt(0, 16, buf).ok());
  const std::string head(buf, 16);
  EXPECT_TRUE(head == std::string(16, '\0') || head == std::string(16, 'x'));
}

}  // namespace
}  // namespace neosi
