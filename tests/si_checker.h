// Shared black-box isolation checkers (in the spirit of "Efficient
// Black-box Checking of Snapshot Isolation in Databases"): a history is a
// set of TxnRecords — txn id, snapshot timestamp, commit timestamp, read
// set, write set — and the checkers verify isolation contracts from the
// recorded history alone, with no access to engine internals. Used both by
// the embedded suite (graph_si_checker_test.cc) and by the wire-level suite
// (server_si_checker_test.cc), which records the same histories through
// socket clients.
//
// SiHistoryChecker — the SI axioms:
//
//   A1  Committed reads: every value read was written by a COMMITTED
//       transaction's FINAL write (no aborted reads, no intermediate reads).
//   A2  Snapshot reads: the value read for a key is the newest committed
//       write with commit_ts <= the reader's snapshot timestamp (unless the
//       reader overwrote it itself first).
//   A3  No lost updates: two committed transactions writing the same key
//       never have overlapping [snapshot_ts, commit_ts] intervals.
//   A4  Commit order: commit timestamps are unique and a writer's commit is
//       after its snapshot.
//   A5  Write skew is PERMITTED: the one anomaly SI allows must survive the
//       checker — a history exhibiting it passes A1..A4.
//
// DsgChecker — full serializability: builds the Direct Serialization Graph
// over the COMMITTED transactions and reports any cycle (a history is
// conflict-serializable iff the DSG is acyclic).
//
// Both attribute reads to writers through a unique-value encoding
// (MakeValue): every write in a checked history must write a value no other
// write produces.

#ifndef NEOSI_TESTS_SI_CHECKER_H_
#define NEOSI_TESTS_SI_CHECKER_H_

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace neosi {
namespace sichecker {

/// One recorded transaction: the checkers see nothing but this.
struct TxnRecord {
  TxnId id = kNoTxn;
  Timestamp snapshot_ts = kNoTimestamp;
  Timestamp commit_ts = kNoTimestamp;  // kNoTimestamp => aborted
  bool committed = false;
  /// key -> value observed by the FIRST read of the key (before any own
  /// write to it).
  std::map<NodeId, int64_t> reads;
  /// key -> FINAL value written (intermediate writes recorded separately).
  std::map<NodeId, int64_t> writes;
  /// Values written and then overwritten inside the same transaction; must
  /// never be observed by anyone (A1's "no intermediate reads").
  std::vector<int64_t> intermediate_writes;
};

/// Per-key index of committed writes, value -> writer.
struct CommittedWrite {
  Timestamp commit_ts = kNoTimestamp;
  int64_t value = 0;
};

/// Unique value encoding so every read can be attributed to its writer.
/// thread+1 keeps the result nonzero: 0 is the seed value and must never
/// collide with a workload write.
inline int64_t MakeValue(int thread, uint64_t seq, int salt = 0) {
  return static_cast<int64_t>(thread + 1) * 100'000'000 +
         static_cast<int64_t>(seq) * 100 + salt;
}

class SiHistoryChecker {
 public:
  explicit SiHistoryChecker(std::vector<TxnRecord> history)
      : history_(std::move(history)) {}

  /// Runs every axiom; collects human-readable violations.
  std::vector<std::string> Check() {
    IndexCommittedWrites();
    CheckCommittedReads();     // A1
    CheckSnapshotReads();      // A2
    CheckNoLostUpdates();      // A3
    CheckCommitOrder();        // A4
    return violations_;
  }

 private:
  void Violation(const std::string& what) { violations_.push_back(what); }

  void IndexCommittedWrites() {
    for (const TxnRecord& txn : history_) {
      if (!txn.committed) continue;
      for (const auto& [key, value] : txn.writes) {
        writes_by_key_[key].push_back({txn.commit_ts, value});
        committed_values_[key].insert(value);
      }
      for (int64_t value : txn.intermediate_writes) {
        intermediate_values_.insert(value);
      }
    }
    for (const TxnRecord& txn : history_) {
      if (txn.committed) continue;
      for (const auto& [key, value] : txn.writes) {
        aborted_values_.insert(value);
      }
      for (int64_t value : txn.intermediate_writes) {
        aborted_values_.insert(value);
      }
    }
    for (auto& [key, writes] : writes_by_key_) {
      std::sort(writes.begin(), writes.end(),
                [](const CommittedWrite& a, const CommittedWrite& b) {
                  return a.commit_ts < b.commit_ts;
                });
    }
  }

  // A1: reads resolve to committed final writes only.
  void CheckCommittedReads() {
    for (const TxnRecord& txn : history_) {
      for (const auto& [key, value] : txn.reads) {
        if (aborted_values_.count(value)) {
          Violation("txn " + std::to_string(txn.id) + " read value " +
                    std::to_string(value) + " written by an ABORTED txn");
        }
        if (intermediate_values_.count(value)) {
          Violation("txn " + std::to_string(txn.id) + " read INTERMEDIATE " +
                    "value " + std::to_string(value));
        }
        auto it = committed_values_.find(key);
        if (it == committed_values_.end() || !it->second.count(value)) {
          if (!aborted_values_.count(value) &&
              !intermediate_values_.count(value)) {
            Violation("txn " + std::to_string(txn.id) + " read value " +
                      std::to_string(value) + " of key " +
                      std::to_string(key) + " that NOBODY committed");
          }
        }
      }
    }
  }

  // A2: each read returns the newest committed write at the snapshot.
  void CheckSnapshotReads() {
    for (const TxnRecord& txn : history_) {
      for (const auto& [key, value] : txn.reads) {
        auto it = writes_by_key_.find(key);
        if (it == writes_by_key_.end()) continue;
        const CommittedWrite* expected = nullptr;
        for (const CommittedWrite& write : it->second) {
          if (write.commit_ts <= txn.snapshot_ts) {
            expected = &write;
          } else {
            break;  // Sorted by commit_ts.
          }
        }
        if (expected == nullptr) continue;  // Initial state predates history.
        if (expected->value != value) {
          std::ostringstream msg;
          msg << "txn " << txn.id << " (snapshot " << txn.snapshot_ts
              << ") read key " << key << " = " << value
              << " but the newest committed write at its snapshot was "
              << expected->value << " (commit_ts " << expected->commit_ts
              << ")";
          Violation(msg.str());
        }
      }
    }
  }

  // A3: committed writers of one key never overlap.
  void CheckNoLostUpdates() {
    std::map<NodeId, std::vector<const TxnRecord*>> writers;
    for (const TxnRecord& txn : history_) {
      if (!txn.committed) continue;
      for (const auto& [key, value] : txn.writes) {
        writers[key].push_back(&txn);
      }
    }
    for (const auto& [key, txns] : writers) {
      for (size_t i = 0; i < txns.size(); ++i) {
        for (size_t j = i + 1; j < txns.size(); ++j) {
          const TxnRecord& a = *txns[i];
          const TxnRecord& b = *txns[j];
          const bool disjoint = a.commit_ts <= b.snapshot_ts ||
                                b.commit_ts <= a.snapshot_ts;
          if (!disjoint) {
            std::ostringstream msg;
            msg << "LOST UPDATE on key " << key << ": txns " << a.id
                << " [" << a.snapshot_ts << "," << a.commit_ts << "] and "
                << b.id << " [" << b.snapshot_ts << "," << b.commit_ts
                << "] overlap and both committed writes";
            Violation(msg.str());
          }
        }
      }
    }
  }

  // A4: unique commit timestamps, commit after snapshot.
  void CheckCommitOrder() {
    std::map<Timestamp, TxnId> seen;
    for (const TxnRecord& txn : history_) {
      if (!txn.committed) continue;
      if (txn.commit_ts == kNoTimestamp) {
        Violation("committed txn " + std::to_string(txn.id) +
                  " has no commit timestamp");
        continue;
      }
      if (txn.commit_ts <= txn.snapshot_ts) {
        Violation("txn " + std::to_string(txn.id) +
                  " committed at or before its snapshot");
      }
      auto [it, inserted] = seen.emplace(txn.commit_ts, txn.id);
      if (!inserted) {
        Violation("txns " + std::to_string(it->second) + " and " +
                  std::to_string(txn.id) + " share commit_ts " +
                  std::to_string(txn.commit_ts));
      }
    }
  }

  std::vector<TxnRecord> history_;
  std::vector<std::string> violations_;
  std::map<NodeId, std::vector<CommittedWrite>> writes_by_key_;
  std::map<NodeId, std::set<int64_t>> committed_values_;
  std::set<int64_t> aborted_values_;
  std::set<int64_t> intermediate_values_;
};

// Direct Serialization Graph cycle detection over the COMMITTED
// transactions of a history:
//
//   ww  Ti -> Tj : Tj installs the version of a key directly following
//                  Ti's (version order = commit-timestamp order).
//   wr  Ti -> Tj : Tj read the version Ti wrote.
//   rw  Ti -> Tj : Ti read the version directly preceding the one Tj
//                  wrote (anti-dependency — the edge SSI polices).
//
// A history is (conflict-)serializable iff this graph is acyclic, so a
// cycle is a serializability violation regardless of which SI axioms hold.
class DsgChecker {
 public:
  explicit DsgChecker(std::vector<TxnRecord> history)
      : history_(std::move(history)) {}

  /// Returns a human-readable description of one cycle, or nullopt if the
  /// history is serializable.
  std::optional<std::string> FindCycle() {
    BuildEdges();
    return DetectCycle();
  }

 private:
  struct Write {
    Timestamp commit_ts;
    size_t txn;  // Index into committed_.
  };

  void AddEdge(size_t from, size_t to, const char* kind, NodeId key) {
    if (from == to) return;
    edges_[from].insert(to);
    labels_.emplace(std::make_pair(from, to),
                    std::string(kind) + " key=" + std::to_string(key));
  }

  void BuildEdges() {
    for (size_t i = 0; i < history_.size(); ++i) {
      if (history_[i].committed) committed_.push_back(i);
    }
    edges_.assign(committed_.size(), {});

    // Version order per key (ww edges between consecutive installers) and
    // (key, value) -> installer attribution for wr/rw edges.
    std::map<NodeId, std::vector<Write>> versions;
    std::map<std::pair<NodeId, int64_t>, size_t> installer;
    for (size_t c = 0; c < committed_.size(); ++c) {
      const TxnRecord& txn = history_[committed_[c]];
      for (const auto& [key, value] : txn.writes) {
        versions[key].push_back({txn.commit_ts, c});
        installer[{key, value}] = c;
      }
    }
    for (auto& [key, writes] : versions) {
      std::sort(writes.begin(), writes.end(),
                [](const Write& a, const Write& b) {
                  return a.commit_ts < b.commit_ts;
                });
      for (size_t i = 0; i + 1 < writes.size(); ++i) {
        AddEdge(writes[i].txn, writes[i + 1].txn, "ww", key);
      }
    }

    for (size_t c = 0; c < committed_.size(); ++c) {
      const TxnRecord& txn = history_[committed_[c]];
      for (const auto& [key, value] : txn.reads) {
        auto vs = versions.find(key);
        auto it = installer.find({key, value});
        if (it != installer.end()) {
          AddEdge(it->second, c, "wr", key);
          // rw: reader -> installer of the NEXT version of this key.
          if (vs != versions.end()) {
            const Timestamp read_ts =
                history_[committed_[it->second]].commit_ts;
            for (const Write& w : vs->second) {
              if (w.commit_ts > read_ts) {
                AddEdge(c, w.txn, "rw", key);
                break;
              }
            }
          }
        } else if (vs != versions.end() && !vs->second.empty()) {
          // Read of the initial state (no writer in the history): the
          // first installer overwrote what this transaction read.
          AddEdge(c, vs->second.front().txn, "rw", key);
        }
      }
    }
  }

  std::optional<std::string> DetectCycle() {
    // Iterative colored DFS; on finding a back edge, reconstruct the cycle
    // from the DFS stack.
    enum class Color { kWhite, kGray, kBlack };
    std::vector<Color> color(committed_.size(), Color::kWhite);
    std::vector<size_t> stack;        // Current DFS path.
    for (size_t root = 0; root < committed_.size(); ++root) {
      if (color[root] != Color::kWhite) continue;
      std::vector<std::pair<size_t, std::set<size_t>::const_iterator>> frames;
      color[root] = Color::kGray;
      stack.push_back(root);
      frames.emplace_back(root, edges_[root].begin());
      while (!frames.empty()) {
        auto& [node, it] = frames.back();
        if (it == edges_[node].end()) {
          color[node] = Color::kBlack;
          stack.pop_back();
          frames.pop_back();
          continue;
        }
        const size_t next = *it++;
        if (color[next] == Color::kGray) {
          std::ostringstream msg;
          msg << "serializability cycle:";
          auto at = std::find(stack.begin(), stack.end(), next);
          std::vector<size_t> cycle(at, stack.end());
          cycle.push_back(next);
          for (size_t i = 0; i < cycle.size(); ++i) {
            const TxnRecord& t = history_[committed_[cycle[i]]];
            msg << "\n  txn " << t.id << " [snap=" << t.snapshot_ts
                << " commit=" << t.commit_ts << "]";
            if (i + 1 < cycle.size()) {
              auto lbl = labels_.find({cycle[i], cycle[i + 1]});
              msg << " --"
                  << (lbl == labels_.end() ? std::string("?") : lbl->second)
                  << "--> ";
            }
          }
          return msg.str();
        }
        if (color[next] == Color::kWhite) {
          color[next] = Color::kGray;
          stack.push_back(next);
          frames.emplace_back(next, edges_[next].begin());
        }
      }
    }
    return std::nullopt;
  }

  std::vector<TxnRecord> history_;
  std::vector<size_t> committed_;           // Indices into history_.
  std::vector<std::set<size_t>> edges_;     // Adjacency over committed_.
  /// (from, to) -> "kind key=N", for cycle diagnostics.
  std::map<std::pair<size_t, size_t>, std::string> labels_;
};

}  // namespace sichecker
}  // namespace neosi

#endif  // NEOSI_TESTS_SI_CHECKER_H_
