// EpochManager: the reclamation domain behind the latch-free read path.
// Covers enter/exit bookkeeping, min-epoch advance, deferred-free ordering
// through a VersionChain in epoch mode, destructor cleanup, slot-exhaustion
// progress, and a torn-reader stress that races latch-free walks against
// prune/retire/drain cycles (the sanitizer jobs run this one hot).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "mvcc/epoch.h"
#include "mvcc/version_chain.h"

namespace neosi {
namespace {

VersionData Data(int64_t v) {
  VersionData data;
  data.props[1] = PropertyValue(v);
  return data;
}

int64_t ValueOf(const std::shared_ptr<const Version>& v) {
  return v->data.props.at(1).AsInt();
}

TEST(EpochManager, EnterExitPublishesAndClearsTheSlot) {
  EpochManager epochs(4);
  EXPECT_EQ(epochs.slot_count(), 4u);
  EXPECT_EQ(epochs.MinActiveEpoch(), UINT64_MAX) << "no reader entered";
  {
    EpochManager::Guard guard(&epochs);
    EXPECT_EQ(epochs.MinActiveEpoch(), epochs.current_epoch());
  }
  EXPECT_EQ(epochs.MinActiveEpoch(), UINT64_MAX) << "guard exit frees the slot";
}

TEST(EpochManager, NullManagerGuardIsANoOp) {
  EpochManager::Guard guard(nullptr);  // latched-baseline call sites do this
}

TEST(EpochManager, MinActiveEpochTracksTheOldestEnteredReader) {
  EpochManager epochs(4);
  const uint64_t e0 = epochs.current_epoch();
  EpochManager::Guard old_reader(&epochs);  // pinned at e0
  epochs.BumpEpoch();
  epochs.BumpEpoch();
  EXPECT_EQ(epochs.current_epoch(), e0 + 2);
  // The old reader holds the minimum down at its entry epoch.
  EXPECT_EQ(epochs.MinActiveEpoch(), e0);
  {
    EpochManager::Guard young_reader(&epochs);  // enters at e0 + 2
    EXPECT_EQ(epochs.MinActiveEpoch(), e0);
  }
  EXPECT_EQ(epochs.MinActiveEpoch(), e0);
}

TEST(EpochManager, DrainFreesOnlyEntriesNoEnteredReaderCanReach) {
  EpochManager epochs(4);
  VersionChain chain(&epochs);
  ASSERT_TRUE(chain.InstallUncommitted(1, Data(10)).ok());
  ASSERT_TRUE(chain.CommitHead(1, 10).ok());
  ASSERT_TRUE(chain.InstallUncommitted(2, Data(20)).ok());
  auto superseded = chain.CommitHead(2, 20);
  ASSERT_TRUE(superseded.ok());
  std::weak_ptr<Version> watch = *superseded;

  auto reader = std::make_unique<EpochManager::Guard>(&epochs);
  ASSERT_TRUE(chain.Remove(*superseded));  // retires into limbo
  superseded->reset();  // limbo now holds the only strong reference
  EXPECT_EQ(epochs.limbo_size(), 1u);
  EXPECT_EQ(epochs.total_retired(), 1u);

  // The reader entered BEFORE the retirement's epoch was surpassed, so no
  // amount of bumping lets the drain free the version under it.
  epochs.BumpEpoch();
  EXPECT_EQ(epochs.Drain(), 0u);
  EXPECT_FALSE(watch.expired());
  EXPECT_EQ(epochs.limbo_size(), 1u);

  // Reader exits; the next bump+drain reclaims it.
  reader.reset();
  epochs.BumpEpoch();
  EXPECT_EQ(epochs.Drain(), 1u);
  EXPECT_TRUE(watch.expired());
  EXPECT_EQ(epochs.limbo_size(), 0u);
  EXPECT_EQ(epochs.total_freed(), 1u);
}

TEST(EpochManager, RetireesStampedAtTheCurrentEpochSurviveSameEpochDrain) {
  EpochManager epochs(2);
  VersionChain chain(&epochs);
  ASSERT_TRUE(chain.InstallUncommitted(1, Data(1)).ok());
  ASSERT_TRUE(chain.CommitHead(1, 5).ok());
  ASSERT_TRUE(chain.InstallUncommitted(2, Data(2)).ok());
  auto superseded = chain.CommitHead(2, 6);
  ASSERT_TRUE(superseded.ok());
  std::weak_ptr<Version> watch = *superseded;
  {
    // A reader entered at the CURRENT epoch: a drain without a bump must
    // not free anything retired at that same epoch (stamp < min fails).
    EpochManager::Guard reader(&epochs);
    ASSERT_TRUE(chain.Remove(*superseded));
    superseded->reset();  // limbo holds the only strong reference
    EXPECT_EQ(epochs.Drain(), 0u);
    EXPECT_FALSE(watch.expired());
  }
  // No reader at all: everything in limbo is free game.
  EXPECT_EQ(epochs.Drain(), 1u);
  EXPECT_TRUE(watch.expired());
}

TEST(EpochManager, DestructorFreesOutstandingLimbo) {
  std::weak_ptr<Version> watch;
  {
    EpochManager epochs(2);
    VersionChain chain(&epochs);
    ASSERT_TRUE(chain.InstallUncommitted(1, Data(1)).ok());
    ASSERT_TRUE(chain.CommitHead(1, 5).ok());
    ASSERT_TRUE(chain.InstallUncommitted(2, Data(2)).ok());
    auto superseded = chain.CommitHead(2, 6);
    ASSERT_TRUE(superseded.ok());
    watch = *superseded;
    ASSERT_TRUE(chain.Remove(*superseded));
    EXPECT_FALSE(watch.expired());  // parked in limbo, never drained
  }
  EXPECT_TRUE(watch.expired()) << "manager teardown must free limbo";
}

TEST(EpochManager, PruneRetiresTheSuffixAsOneEntryWithLinksIntact) {
  EpochManager epochs(4);
  VersionChain chain(&epochs);
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(chain.InstallUncommitted(i, Data(i * 10)).ok());
    auto superseded = chain.CommitHead(i, i * 10);
    ASSERT_TRUE(superseded.ok());
  }
  ASSERT_EQ(chain.Length(), 5u);

  // A reader standing at the head BEFORE the prune: after the prune severs
  // the suffix, the reader's walk down older_raw still traverses retired
  // versions (interior links intact) — observable here as a snapshot read
  // at ts 20 continuing to resolve.
  EpochManager::Guard reader(&epochs);
  auto old_visible = chain.Visible(20);
  ASSERT_NE(old_visible, nullptr);
  EXPECT_EQ(ValueOf(old_visible), 20);

  EXPECT_EQ(chain.PruneSupersededUpTo(50), 4u);
  EXPECT_EQ(chain.Length(), 1u);
  // One limbo entry for the whole severed suffix.
  EXPECT_EQ(epochs.limbo_size(), 1u);
  // The retired suffix is still walkable from the retained reference.
  const Version* v = old_visible.get();
  int64_t expected = 20;
  while (v != nullptr) {
    EXPECT_EQ(v->data.props.at(1).AsInt(), expected);
    expected -= 10;
    v = v->older_raw.load(std::memory_order_acquire);
  }
  EXPECT_EQ(expected, 0) << "walked 20 -> 10 -> end";
}

TEST(EpochManager, SlotExhaustionStallsEntryButMakesProgress) {
  // 2 slots, 4 threads: entry must spin-wait, not fail or crash.
  EpochManager epochs(2);
  std::atomic<int> completed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        EpochManager::Guard guard(&epochs);
      }
      completed.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(completed.load(), 4);
  EXPECT_EQ(epochs.MinActiveEpoch(), UINT64_MAX);
}

// The core memory-safety property, stressed: latch-free readers walk the
// chain while a writer commits new versions, prunes superseded ones and
// drives bump+drain cycles. ASan/TSan turn any reclaim-under-reader into a
// hard failure; without sanitizers the value checks still catch torn state.
TEST(EpochManager, TornReaderStressNeverObservesReclaimedMemory) {
  EpochManager epochs;  // auto-sized
  VersionChain chain(&epochs);
  ASSERT_TRUE(chain.InstallUncommitted(1, Data(1)).ok());
  ASSERT_TRUE(chain.CommitHead(1, 1).ok());

  std::atomic<bool> stop{false};
  std::atomic<Timestamp> newest_ts{1};
  std::atomic<int> violations{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const Timestamp ts = newest_ts.load(std::memory_order_acquire);
        auto v = chain.Visible(ts);
        if (v == nullptr) {
          // Legitimate: the writer may have pruned past this (stale) ts
          // between our newest_ts load and the walk. Not a safety issue —
          // engine-level reads re-check the expiry flag in that window.
          continue;
        }
        // Data is immutable post-commit: value must equal its commit ts.
        if (ValueOf(v) != static_cast<int64_t>(
                              v->commit_ts.load(std::memory_order_acquire))) {
          violations.fetch_add(1);
        }
        auto latest = chain.LatestCommitted();
        if (latest == nullptr || ValueOf(latest) < ValueOf(v)) {
          violations.fetch_add(1);
        }
      }
    });
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(100);
  TxnId txn = 2;
  Timestamp ts = 2;
  while (std::chrono::steady_clock::now() < deadline) {
    ASSERT_TRUE(chain.InstallUncommitted(txn, Data(ts)).ok());
    ASSERT_TRUE(chain.CommitHead(txn, ts).ok());
    newest_ts.store(ts, std::memory_order_release);
    ++txn;
    ++ts;
    if (ts % 8 == 0) {
      // Everything older than the newest committed version is prunable
      // (these readers read at newest_ts); retire + tick the epoch.
      chain.PruneSupersededUpTo(ts);
      epochs.BumpEpoch();
      epochs.Drain();
    }
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0);

  // Quiesce: with readers gone, the backlog drains to nothing.
  chain.PruneSupersededUpTo(ts);
  epochs.BumpEpoch();
  EXPECT_GT(epochs.total_retired(), 0u);
  epochs.Drain();
  EXPECT_EQ(epochs.limbo_size(), 0u);
  EXPECT_EQ(epochs.total_freed(), epochs.total_retired());
}

}  // namespace
}  // namespace neosi
