// WAL-shipping read replicas: live tailing, replay-watermark snapshots,
// session monotonic reads, standby conflicts, re-seed errors, and the
// tailer's robustness against segment recycling and torn tails.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "graph/graph_database.h"
#include "storage/replication_source.h"
#include "storage/wal.h"
#include "storage/wal_dir.h"
#include "fault_injection.h"

namespace neosi {
namespace {

DatabaseOptions PrimaryOptions() {
  DatabaseOptions options;
  options.in_memory = true;
  return options;
}

/// Replica of an in-process primary, in MANUAL apply mode (tests drive
/// RunOnce deterministically).
DatabaseOptions ManualReplicaOptions(GraphDatabase* primary) {
  DatabaseOptions options;
  options.in_memory = true;
  options.replica_of = primary->engine().store.wal().dir();
  options.replica_poll_interval_ms = 0;  // Manual: tests call RunOnce().
  return options;
}

std::unique_ptr<GraphDatabase> MustOpen(const DatabaseOptions& options) {
  auto db = GraphDatabase::Open(options);
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(*db);
}

void CatchUp(GraphDatabase* replica) {
  ASSERT_TRUE(replica->replica_applier()->RunOnce().ok());
}

/// Full visible node state under one snapshot: id -> (labels, props).
std::map<NodeId, std::pair<std::vector<std::string>, NamedProperties>>
Materialize(GraphDatabase* db) {
  std::map<NodeId, std::pair<std::vector<std::string>, NamedProperties>> out;
  TransactionOptions opts;
  opts.read_only = true;
  auto txn = db->Begin(IsolationLevel::kSnapshotIsolation, opts);
  auto nodes = txn->AllNodes();
  EXPECT_TRUE(nodes.ok()) << nodes.status();
  for (NodeId id : *nodes) {
    auto view = txn->GetNode(id);
    EXPECT_TRUE(view.ok()) << view.status();
    out[id] = {view->labels, view->props};
  }
  return out;
}

TEST(Replication, ReplicaTailsLivePrimary) {
  auto primary = MustOpen(PrimaryOptions());
  auto replica = MustOpen(ManualReplicaOptions(primary.get()));

  NodeId alice;
  {
    auto txn = primary->Begin();
    alice = *txn->CreateNode({"Person"}, {{"name", PropertyValue("alice")}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  CatchUp(replica.get());

  auto reader = replica->Begin();
  auto view = reader->GetNode(alice);
  ASSERT_TRUE(view.ok()) << view.status();
  EXPECT_EQ(view->props.at("name").AsString(), "alice");
  EXPECT_TRUE(*reader->NodeHasLabel(alice, "Person"));

  // Watermark bookkeeping: the replica published the primary's history.
  const DatabaseStats stats = replica->Stats();
  EXPECT_TRUE(stats.is_replica);
  EXPECT_GE(stats.replica_applied_ts, 1u);
  EXPECT_GE(stats.replica_records_applied, 1u);
  EXPECT_FALSE(primary->Stats().is_replica);
}

TEST(Replication, UpdatesDeletesAndIndexesShip) {
  auto primary = MustOpen(PrimaryOptions());
  auto replica = MustOpen(ManualReplicaOptions(primary.get()));

  NodeId a, b;
  RelId rel;
  {
    auto txn = primary->Begin();
    a = *txn->CreateNode({"Person"}, {{"name", PropertyValue("a")}});
    b = *txn->CreateNode({"Person"}, {{"name", PropertyValue("b")}});
    rel = *txn->CreateRelationship(a, b, "KNOWS",
                                   {{"since", PropertyValue(int64_t{2016})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  {
    auto txn = primary->Begin();
    ASSERT_TRUE(txn->SetNodeProperty(a, "name", PropertyValue("a2")).ok());
    ASSERT_TRUE(txn->AddLabel(a, "Admin").ok());
    ASSERT_TRUE(txn->RemoveLabel(b, "Person").ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  CatchUp(replica.get());

  auto reader = replica->Begin();
  EXPECT_EQ(reader->GetNode(a)->props.at("name").AsString(), "a2");
  // Label index replay: membership diffs were stamped at the record's ts.
  auto admins = reader->GetNodesByLabel("Admin");
  ASSERT_TRUE(admins.ok());
  EXPECT_EQ(*admins, std::vector<NodeId>{a});
  auto persons = reader->GetNodesByLabel("Person");
  ASSERT_TRUE(persons.ok());
  EXPECT_EQ(*persons, std::vector<NodeId>{a});
  // Property index replay (old value removed, new value added).
  EXPECT_TRUE(reader->GetNodesByProperty("name", PropertyValue("a"))->empty());
  EXPECT_EQ(*reader->GetNodesByProperty("name", PropertyValue("a2")),
            std::vector<NodeId>{a});
  // Topology ships too.
  auto neighbors = reader->GetNeighbors(a);
  ASSERT_TRUE(neighbors.ok());
  EXPECT_EQ(*neighbors, std::vector<NodeId>{b});
  EXPECT_EQ(reader->GetRelationship(rel)->props.at("since").AsInt(), 2016);

  {
    auto txn = primary->Begin();
    ASSERT_TRUE(txn->DeleteRelationship(rel).ok());
    ASSERT_TRUE(txn->DeleteNode(b).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  CatchUp(replica.get());
  auto reader2 = replica->Begin();
  EXPECT_TRUE(reader2->GetNode(b).status().IsNotFound());
  EXPECT_TRUE(reader2->GetRelationship(rel).status().IsNotFound());
  // The earlier snapshot still sees the pre-delete world (its versions are
  // pinned by its registration).
  EXPECT_TRUE(reader->GetNode(b).ok());
}

TEST(Replication, ReplicaIsReadOnlyWithRetryableStatus) {
  auto primary = MustOpen(PrimaryOptions());
  auto replica = MustOpen(ManualReplicaOptions(primary.get()));

  auto txn = replica->Begin();
  Status s = txn->CreateNode({"Person"}).status();
  EXPECT_TRUE(s.IsReplicaReadOnly()) << s;
  EXPECT_TRUE(s.IsRetryable());

  // Serializable isolation cannot be validated replica-side: first use
  // fails with the same routing status.
  auto ser = replica->Begin(IsolationLevel::kSerializable);
  Status read = ser->GetNode(1).status();
  EXPECT_TRUE(read.IsReplicaReadOnly()) << read;

  // Snapshot and read-committed reads are the replica's job.
  EXPECT_TRUE(
      replica->Begin(IsolationLevel::kSnapshotIsolation)->AllNodes().ok());
  EXPECT_TRUE(
      replica->Begin(IsolationLevel::kReadCommitted)->AllNodes().ok());
}

TEST(Replication, SnapshotsAreTransactionallyConsistent) {
  // Two accounts, constant total; every replica snapshot must see the
  // invariant no matter where replay stands.
  auto primary = MustOpen(PrimaryOptions());
  auto replica = MustOpen(ManualReplicaOptions(primary.get()));

  NodeId x, y;
  {
    auto txn = primary->Begin();
    x = *txn->CreateNode({"Acct"}, {{"bal", PropertyValue(int64_t{500})}});
    y = *txn->CreateNode({"Acct"}, {{"bal", PropertyValue(int64_t{500})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  for (int i = 0; i < 25; ++i) {
    auto txn = primary->Begin();
    const int64_t bx = txn->GetNodeProperty(x, "bal")->AsInt();
    const int64_t by = txn->GetNodeProperty(y, "bal")->AsInt();
    ASSERT_TRUE(
        txn->SetNodeProperty(x, "bal", PropertyValue(bx - 7)).ok());
    ASSERT_TRUE(
        txn->SetNodeProperty(y, "bal", PropertyValue(by + 7)).ok());
    ASSERT_TRUE(txn->Commit().ok());
    CatchUp(replica.get());

    auto reader = replica->Begin();
    if (reader->NodeExists(x)) {
      const int64_t rx = reader->GetNodeProperty(x, "bal")->AsInt();
      const int64_t ry = reader->GetNodeProperty(y, "bal")->AsInt();
      EXPECT_EQ(rx + ry, 1000) << "snapshot saw a torn transfer";
    }
  }
  EXPECT_EQ(Materialize(primary.get()), Materialize(replica.get()));
}

TEST(Replication, SessionMonotonicReadsAcrossReplicas) {
  auto primary = MustOpen(PrimaryOptions());
  auto fresh = MustOpen(ManualReplicaOptions(primary.get()));
  auto stale = MustOpen(ManualReplicaOptions(primary.get()));

  NodeId id;
  {
    auto txn = primary->Begin();
    id = *txn->CreateNode({"Person"});
    ASSERT_TRUE(txn->Commit().ok());
  }
  CatchUp(fresh.get());  // `stale` deliberately does not run.

  ReplicaSession session;
  auto on_fresh = session.Begin(fresh.get());
  EXPECT_TRUE(on_fresh->GetNode(id).ok());
  const Timestamp floor = session.floor();
  EXPECT_GE(floor, 1u);

  // Routing the session to the lagging replica must NOT travel back in
  // time: once it catches up, the session's snapshot is at or above the
  // floor and sees everything the first read saw.
  CatchUp(stale.get());
  auto on_stale = session.Begin(stale.get());
  EXPECT_GE(on_stale->start_ts(), floor);
  EXPECT_TRUE(on_stale->GetNode(id).ok());

  // Read-your-writes: feed a primary commit timestamp into the floor.
  Timestamp commit_ts;
  {
    auto txn = primary->Begin();
    ASSERT_TRUE(txn->AddLabel(id, "Admin").ok());
    ASSERT_TRUE(txn->Commit().ok());
    commit_ts = txn->commit_ts();
  }
  session.AdvanceFloor(commit_ts);
  CatchUp(fresh.get());
  auto again = session.Begin(fresh.get());
  EXPECT_GE(again->start_ts(), commit_ts);
  EXPECT_TRUE(*again->NodeHasLabel(id, "Admin"));
}

TEST(Replication, ShippedPurgeCancelsConflictingSnapshots) {
  auto primary = MustOpen(PrimaryOptions());
  DatabaseOptions replica_options = ManualReplicaOptions(primary.get());
  replica_options.replica_conflict_grace_ms = 0;  // Cancel immediately.
  auto replica = MustOpen(replica_options);

  NodeId doomed;
  {
    auto txn = primary->Begin();
    doomed = *txn->CreateNode({"Tmp"});
    ASSERT_TRUE(txn->Commit().ok());
  }
  CatchUp(replica.get());

  // A replica snapshot that can still see the node.
  auto old_reader = replica->Begin();
  ASSERT_TRUE(old_reader->GetNode(doomed).ok());

  // Primary deletes and physically reclaims (purge record ships).
  {
    auto txn = primary->Begin();
    ASSERT_TRUE(txn->DeleteNode(doomed).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  const GcStats gc = primary->RunGc();
  ASSERT_GE(gc.tombstones_purged, 1u);
  CatchUp(replica.get());

  const DatabaseStats stats = replica->Stats();
  EXPECT_GE(stats.replica_purges_applied, 1u);
  EXPECT_GE(stats.snapshots_expired_replication, 1u);
  // The standby conflict surfaces as the snapshot-lifecycle status.
  Status s = old_reader->GetNode(doomed).status();
  EXPECT_TRUE(s.IsSnapshotTooOld()) << s;
  // A fresh snapshot simply no longer sees the node.
  EXPECT_TRUE(replica->Begin()->GetNode(doomed).status().IsNotFound());
}

TEST(Replication, EmptyReplicaJoiningMidLifeNeedsRetainedHistory) {
  // A primary that has checkpointed its early segments away cannot seed an
  // empty replica: the gap is detected, reported as Corruption, and the
  // applier parks instead of serving a hole-y history.
  DatabaseOptions primary_options = PrimaryOptions();
  primary_options.wal_segment_size = 512;  // Rotate constantly.
  auto primary = MustOpen(primary_options);
  for (int i = 0; i < 40; ++i) {
    auto txn = primary->Begin();
    ASSERT_TRUE(
        txn->CreateNode({"Bulk"}, {{"i", PropertyValue(int64_t{i})}}).ok());
    ASSERT_TRUE(txn->Commit().ok());
    if (i % 8 == 7) ASSERT_TRUE(primary->Checkpoint().ok());
  }
  ASSERT_GT(primary->engine().store.wal().HeadLsn(), 0u)
      << "test needs retired history";

  auto replica = MustOpen(ManualReplicaOptions(primary.get()));
  Status s = replica->replica_applier()->RunOnce();
  EXPECT_TRUE(s.IsCorruption()) << s;
  EXPECT_NE(s.message().find("re-seed"), std::string::npos) << s;
  EXPECT_TRUE(replica->replica_applier()->last_error().IsCorruption());
}

TEST(Replication, KeepSegmentsWidensTheShippingWindow) {
  // Same churn as above, but the primary retains enough segments for a
  // fresh replica to replay the full history.
  DatabaseOptions primary_options = PrimaryOptions();
  primary_options.wal_segment_size = 512;
  primary_options.wal_keep_segments = 64;
  auto primary = MustOpen(primary_options);
  for (int i = 0; i < 40; ++i) {
    auto txn = primary->Begin();
    ASSERT_TRUE(
        txn->CreateNode({"Bulk"}, {{"i", PropertyValue(int64_t{i})}}).ok());
    ASSERT_TRUE(txn->Commit().ok());
    if (i % 8 == 7) ASSERT_TRUE(primary->Checkpoint().ok());
  }
  auto replica = MustOpen(ManualReplicaOptions(primary.get()));
  CatchUp(replica.get());
  EXPECT_EQ(Materialize(primary.get()), Materialize(replica.get()));
}

TEST(Replication, DaemonModeFollowsConcurrentWriters) {
  // Live mode: the applier daemon tails while writer threads churn the
  // primary over many tiny, recycling segments — the recycle-race and
  // torn-tail paths get exercised for real here.
  DatabaseOptions primary_options = PrimaryOptions();
  primary_options.wal_segment_size = 1024;
  primary_options.wal_keep_segments = 1024;  // Never outrun the tailer.
  auto primary = MustOpen(primary_options);

  DatabaseOptions replica_options = ManualReplicaOptions(primary.get());
  replica_options.replica_poll_interval_ms = 1;
  auto replica = MustOpen(replica_options);

  constexpr int kWriters = 3;
  constexpr int kTxnsPerWriter = 40;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&primary, w] {
      for (int i = 0; i < kTxnsPerWriter; ++i) {
        auto txn = primary->Begin();
        auto id = txn->CreateNode(
            {"W" + std::to_string(w)},
            {{"i", PropertyValue(int64_t{i})}});
        if (!id.ok() || !txn->Commit().ok()) {
          ADD_FAILURE() << "writer failed";
          return;
        }
      }
    });
  }
  for (auto& t : writers) t.join();

  ASSERT_TRUE(replica->replica_applier()->WaitCaughtUp(30000))
      << replica->replica_applier()->last_error();
  EXPECT_EQ(Materialize(primary.get()), Materialize(replica.get()));
  const DatabaseStats stats = replica->Stats();
  EXPECT_EQ(stats.replica_applied_ts, primary->Stats().last_committed);
}

TEST(Replication, ReplicaKeepsServingAfterPrimaryCloses) {
  auto primary = MustOpen(PrimaryOptions());
  auto replica = MustOpen(ManualReplicaOptions(primary.get()));
  NodeId id;
  {
    auto txn = primary->Begin();
    id = *txn->CreateNode({"Person"});
    ASSERT_TRUE(txn->Commit().ok());
  }
  CatchUp(replica.get());
  primary.reset();  // The shared in-memory WalDir outlives the primary.
  EXPECT_TRUE(replica->Begin()->GetNode(id).ok());
  CatchUp(replica.get());  // Polling a quiescent source stays clean.
}

// ---------------------------------------------------------------------------
// Tailer robustness at the ReplicationSource level (deterministic byte-level
// scenarios a live primary only produces probabilistically).
// ---------------------------------------------------------------------------

class TailerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::make_shared<InMemoryWalDir>();
    WalOptions options;
    options.segment_size = 256;  // Tiny: every few records rotate.
    options.recycle_segments = 2;
    wal_ = std::make_unique<Wal>(dir_, options);
    ASSERT_TRUE(wal_->Open().ok());
  }

  WalRecord MakeRecord(Timestamp ts) {
    WalRecord record;
    record.txn_id = ts;
    record.commit_ts = ts;
    record.ops.push_back(WalOp::CreateNode(ts, {}, {}));
    return record;
  }

  std::shared_ptr<InMemoryWalDir> dir_;
  std::unique_ptr<Wal> wal_;
};

TEST_F(TailerTest, ShipsAcrossRotationsAndTracksCursor) {
  WalDirReplicationSource source(dir_);
  Lsn cursor = 0;
  std::vector<ShippedRecord> shipped;
  for (Timestamp ts = 1; ts <= 50; ++ts) {
    ASSERT_TRUE(wal_->Append(MakeRecord(ts)).ok());
  }
  ASSERT_GT(wal_->SegmentCount(), 1u);
  ASSERT_TRUE(source.Poll(cursor, &shipped, &cursor).ok());
  ASSERT_EQ(shipped.size(), 50u);
  for (size_t i = 0; i < shipped.size(); ++i) {
    EXPECT_EQ(shipped[i].record.commit_ts, i + 1);
    if (i > 0) EXPECT_GT(shipped[i].lsn, shipped[i - 1].lsn);
  }
  // Incremental polls ship only the delta.
  std::vector<ShippedRecord> more;
  ASSERT_TRUE(source.Poll(cursor, &more, &cursor).ok());
  EXPECT_TRUE(more.empty());
  ASSERT_TRUE(wal_->Append(MakeRecord(51)).ok());
  ASSERT_TRUE(source.Poll(cursor, &more, &cursor).ok());
  ASSERT_EQ(more.size(), 1u);
  EXPECT_EQ(more[0].record.commit_ts, 51u);
}

TEST_F(TailerTest, TornTailInNewestSegmentShipsCleanPrefixOnly) {
  for (Timestamp ts = 1; ts <= 5; ++ts) {
    ASSERT_TRUE(wal_->Append(MakeRecord(ts)).ok());
  }
  // Corrupt the last frame's payload bytes in the newest segment — exactly
  // what a torn in-flight append looks like to a tailer.
  std::vector<std::string> names;
  ASSERT_TRUE(dir_->List(&names).ok());
  uint64_t newest = 0;
  std::string newest_name;
  for (const auto& name : names) {
    if (name.rfind("wal.free.", 0) == 0) continue;
    if (name.rfind("wal.", 0) == 0 && name >= newest_name) {
      newest_name = name;
      newest = 1;
    }
  }
  ASSERT_EQ(newest, 1u);
  std::unique_ptr<PagedFile> file;
  ASSERT_TRUE(dir_->OpenExisting(newest_name, &file).ok());
  const uint64_t size = file->Size();
  ASSERT_GT(size, 4u);
  const char garbage[4] = {'\x5a', '\x5a', '\x5a', '\x5a'};
  ASSERT_TRUE(file->WriteAt(size - 4, garbage, 4).ok());

  WalDirReplicationSource source(dir_);
  Lsn cursor = 0;
  std::vector<ShippedRecord> shipped;
  ASSERT_TRUE(source.Poll(cursor, &shipped, &cursor).ok());
  // The torn record is withheld, everything before it ships.
  ASSERT_FALSE(shipped.empty());
  EXPECT_LT(shipped.size(), 5u);
  for (const auto& s : shipped) EXPECT_LT(s.record.commit_ts, 5u);
}

TEST_F(TailerTest, CursorBelowRetainedHistoryIsCorruption) {
  for (Timestamp ts = 1; ts <= 40; ++ts) {
    ASSERT_TRUE(wal_->Append(MakeRecord(ts)).ok());
  }
  // Retire every full segment below the stable cursor (checkpoint path).
  ASSERT_TRUE(wal_->TruncatePrefix(wal_->StableLsn()).ok());
  ASSERT_GT(wal_->HeadLsn(), 0u);

  WalDirReplicationSource source(dir_);
  Lsn cursor = 0;
  std::vector<ShippedRecord> shipped;
  Status s = source.Poll(0, &shipped, &cursor);
  EXPECT_TRUE(s.IsCorruption()) << s;
  // From the oldest RETAINED base the walk is clean.
  shipped.clear();
  cursor = wal_->HeadLsn();
  EXPECT_TRUE(source.Poll(cursor, &shipped, &cursor).ok());
}

TEST_F(TailerTest, RecycledSegmentChangingIdentityMidReadIsDropped) {
  // Fill several segments, remember the oldest, then recycle it under an
  // open handle: the identity re-check must discard anything read from it.
  for (Timestamp ts = 1; ts <= 50; ++ts) {
    ASSERT_TRUE(wal_->Append(MakeRecord(ts)).ok());
  }
  WalDirReplicationSource source(dir_);
  Lsn cursor = 0;
  std::vector<ShippedRecord> shipped;
  ASSERT_TRUE(source.Poll(cursor, &shipped, &cursor).ok());
  const size_t total = shipped.size();
  ASSERT_EQ(total, 50u);

  // Truncate the prefix (recycling the retired files) and keep appending:
  // the tailer's cursor is already past the recycled range, so subsequent
  // polls ship only new records and never trip on the recycled files.
  ASSERT_TRUE(wal_->TruncatePrefix(wal_->StableLsn()).ok());
  ASSERT_TRUE(wal_->Append(MakeRecord(51)).ok());
  std::vector<ShippedRecord> more;
  ASSERT_TRUE(source.Poll(cursor, &more, &cursor).ok());
  ASSERT_EQ(more.size(), 1u);
  EXPECT_EQ(more[0].record.commit_ts, 51u);
}

}  // namespace
}  // namespace neosi
