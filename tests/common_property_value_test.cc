// PropertyValue: typing, total order, serialization, hashing.

#include <gtest/gtest.h>

#include <cmath>

#include "common/property_value.h"

namespace neosi {
namespace {

TEST(PropertyValue, KindsAndAccessors) {
  EXPECT_TRUE(PropertyValue().is_null());
  EXPECT_TRUE(PropertyValue(true).is_bool());
  EXPECT_TRUE(PropertyValue(int64_t{5}).is_int());
  EXPECT_TRUE(PropertyValue(3.5).is_double());
  EXPECT_TRUE(PropertyValue("x").is_string());
  EXPECT_EQ(PropertyValue(false).AsBool(), false);
  EXPECT_EQ(PropertyValue(int64_t{-7}).AsInt(), -7);
  EXPECT_DOUBLE_EQ(PropertyValue(2.25).AsDouble(), 2.25);
  EXPECT_EQ(PropertyValue("abc").AsString(), "abc");
  // int literal convenience.
  EXPECT_TRUE(PropertyValue(5).is_int());
}

TEST(PropertyValue, TotalOrderAcrossKinds) {
  // null < bool < int < double < string (kind-major order).
  PropertyValue null_v;
  PropertyValue bool_v(true);
  PropertyValue int_v(int64_t{0});
  PropertyValue double_v(0.0);
  PropertyValue string_v("");
  EXPECT_LT(null_v, bool_v);
  EXPECT_LT(bool_v, int_v);
  EXPECT_LT(int_v, double_v);
  EXPECT_LT(double_v, string_v);
}

TEST(PropertyValue, OrderWithinKind) {
  EXPECT_LT(PropertyValue(int64_t{1}), PropertyValue(int64_t{2}));
  EXPECT_LT(PropertyValue(int64_t{-5}), PropertyValue(int64_t{0}));
  EXPECT_LT(PropertyValue(1.5), PropertyValue(2.5));
  EXPECT_LT(PropertyValue("abc"), PropertyValue("abd"));
  EXPECT_LT(PropertyValue(false), PropertyValue(true));
  EXPECT_EQ(PropertyValue("same"), PropertyValue("same"));
  EXPECT_NE(PropertyValue(int64_t{1}), PropertyValue(int64_t{2}));
}

TEST(PropertyValue, NanSortsLast) {
  const double nan = std::nan("");
  EXPECT_LT(PropertyValue(1e308), PropertyValue(nan));
  EXPECT_EQ(PropertyValue(nan).Compare(PropertyValue(nan)), 0);
}

TEST(PropertyValue, EncodeDecodeRoundTrip) {
  const PropertyValue values[] = {
      PropertyValue(),
      PropertyValue(true),
      PropertyValue(false),
      PropertyValue(int64_t{0}),
      PropertyValue(int64_t{-123456789}),
      PropertyValue(int64_t{INT64_MAX}),
      PropertyValue(0.0),
      PropertyValue(-1.5e300),
      PropertyValue(""),
      PropertyValue("short"),
      PropertyValue(std::string(10000, 'z')),
  };
  for (const PropertyValue& v : values) {
    std::string buf;
    v.EncodeTo(&buf);
    Slice input(buf);
    PropertyValue out;
    ASSERT_TRUE(PropertyValue::DecodeFrom(&input, &out).ok());
    EXPECT_EQ(out, v) << v.ToString();
    EXPECT_TRUE(input.empty());
  }
}

TEST(PropertyValue, DecodeRejectsGarbage) {
  PropertyValue out;
  Slice empty("", 0);
  EXPECT_TRUE(PropertyValue::DecodeFrom(&empty, &out).IsCorruption());
  std::string bad_kind = "\x7F";
  Slice bad(bad_kind);
  EXPECT_TRUE(PropertyValue::DecodeFrom(&bad, &out).IsCorruption());
  std::string truncated_int = "\x02\x01\x02";  // kInt + 3 bytes only.
  Slice trunc(truncated_int);
  EXPECT_TRUE(PropertyValue::DecodeFrom(&trunc, &out).IsCorruption());
}

TEST(PropertyValue, HashConsistentWithEquality) {
  EXPECT_EQ(PropertyValue("abc").Hash(), PropertyValue("abc").Hash());
  EXPECT_EQ(PropertyValue(int64_t{7}).Hash(), PropertyValue(int64_t{7}).Hash());
  // Different kinds with "same" value should not collide trivially.
  EXPECT_NE(PropertyValue(int64_t{0}).Hash(), PropertyValue(0.0).Hash());
}

TEST(PropertyValue, ToString) {
  EXPECT_EQ(PropertyValue().ToString(), "null");
  EXPECT_EQ(PropertyValue(true).ToString(), "true");
  EXPECT_EQ(PropertyValue(int64_t{42}).ToString(), "42");
  EXPECT_EQ(PropertyValue("hi").ToString(), "\"hi\"");
}

TEST(PropertyValue, ApproximateSizeGrowsWithStrings) {
  EXPECT_GT(PropertyValue(std::string(1000, 'a')).ApproximateSize(),
            PropertyValue(int64_t{1}).ApproximateSize() + 900);
}

}  // namespace
}  // namespace neosi
