// TimestampOracle and ActiveTxnTable.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "txn/active_txn_table.h"
#include "txn/timestamp_oracle.h"

namespace neosi {
namespace {

TEST(TimestampOracle, StartsEmpty) {
  TimestampOracle oracle;
  EXPECT_EQ(oracle.ReadTs(), 0u);
  EXPECT_EQ(oracle.LastAllocatedCommitTs(), 0u);
}

TEST(TimestampOracle, CommitTimestampsMonotonic) {
  TimestampOracle oracle;
  Timestamp prev = 0;
  for (int i = 0; i < 100; ++i) {
    const Timestamp ts = oracle.NextCommitTs();
    EXPECT_GT(ts, prev);
    prev = ts;
  }
}

TEST(TimestampOracle, ReadTsLagsUntilPublish) {
  TimestampOracle oracle;
  const Timestamp ts = oracle.NextCommitTs();
  EXPECT_EQ(oracle.ReadTs(), 0u);  // Not yet applied.
  oracle.FinishCommit(ts);
  EXPECT_EQ(oracle.ReadTs(), ts);
}

TEST(TimestampOracle, OutOfOrderFinishPublishesInOrder) {
  TimestampOracle oracle;
  const Timestamp t1 = oracle.NextCommitTs();
  const Timestamp t2 = oracle.NextCommitTs();
  const Timestamp t3 = oracle.NextCommitTs();
  oracle.FinishCommit(t3);
  EXPECT_EQ(oracle.ReadTs(), 0u);  // t1, t2 still in flight.
  EXPECT_EQ(oracle.PendingPublishCount(), 1u);
  oracle.FinishCommit(t1);
  EXPECT_EQ(oracle.ReadTs(), t1);  // t2 still gates t3.
  oracle.FinishCommit(t2);
  EXPECT_EQ(oracle.ReadTs(), t3);  // Gap closed: watermark jumps to t3.
  EXPECT_EQ(oracle.PendingPublishCount(), 0u);
}

TEST(TimestampOracle, ConcurrentFinishersNeverExposeAGap) {
  TimestampOracle oracle;
  constexpr int kPerThread = 2000;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        const Timestamp ts = oracle.NextCommitTs();
        // The watermark can never have reached our unfinished timestamp.
        EXPECT_LT(oracle.ReadTs(), ts);
        oracle.FinishCommit(ts);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(oracle.ReadTs(), Timestamp{kPerThread * kThreads});
  EXPECT_EQ(oracle.PendingPublishCount(), 0u);
}

// Commit-wait batching: waiters park on per-timestamp slots, and a
// watermark advance wakes ONLY the waiters it satisfies. Finishing t1 must
// release the t1 waiter while t2/t3 stay parked; finishing t3 (watermark
// still gated by t2) must release nobody.
TEST(TimestampOracle, WatermarkAdvanceWakesOnlySatisfiedWaiters) {
  TimestampOracle oracle;
  const Timestamp t1 = oracle.NextCommitTs();
  const Timestamp t2 = oracle.NextCommitTs();
  const Timestamp t3 = oracle.NextCommitTs();

  std::atomic<bool> done1{false}, done2{false}, done3{false};
  std::thread w1([&] {
    oracle.WaitUntilPublished(t1);
    done1.store(true);
  });
  std::thread w2([&] {
    oracle.WaitUntilPublished(t2);
    done2.store(true);
  });
  std::thread w3([&] {
    oracle.WaitUntilPublished(t3);
    done3.store(true);
  });

  // All three must be parked, each on its own slot.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (oracle.WaitingSlotCount() < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(oracle.WaitingSlotCount(), 3u);

  oracle.FinishCommit(t1);
  while (!done1.load() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(done1.load());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(done2.load());
  EXPECT_FALSE(done3.load());
  EXPECT_EQ(oracle.WaitingSlotCount(), 2u);  // t1's slot retired.

  // t3 finishes but t2 still gates the watermark: nobody wakes.
  oracle.FinishCommit(t3);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(done2.load());
  EXPECT_FALSE(done3.load());
  EXPECT_EQ(oracle.WaitingSlotCount(), 2u);

  // t2 closes the gap: watermark jumps to t3, both remaining waiters wake.
  oracle.FinishCommit(t2);
  w1.join();
  w2.join();
  w3.join();
  EXPECT_TRUE(done2.load());
  EXPECT_TRUE(done3.load());
  EXPECT_EQ(oracle.WaitingSlotCount(), 0u);
  EXPECT_EQ(oracle.ReadTs(), t3);
}

TEST(TimestampOracle, RestartWakesParkedWaiters) {
  TimestampOracle oracle;
  const Timestamp ts = oracle.NextCommitTs();
  std::atomic<bool> done{false};
  std::thread waiter([&] {
    oracle.WaitUntilPublished(ts);
    done.store(true);
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (oracle.WaitingSlotCount() < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  oracle.Restart(ts);  // Recovery publishes everything up to ts.
  waiter.join();
  EXPECT_TRUE(done.load());
  EXPECT_EQ(oracle.WaitingSlotCount(), 0u);
}

TEST(TimestampOracle, RestartResumesAboveRecoveredMax) {
  TimestampOracle oracle;
  oracle.Restart(500);
  EXPECT_EQ(oracle.ReadTs(), 500u);
  EXPECT_EQ(oracle.NextCommitTs(), 501u);
}

TEST(TimestampOracle, TxnIdsUnique) {
  TimestampOracle oracle;
  std::atomic<uint64_t> sum{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) sum.fetch_add(oracle.NextTxnId());
    });
  }
  for (auto& t : threads) t.join();
  // Sum of 1..4000 if every id was handed out exactly once.
  EXPECT_EQ(sum.load(), 4000ull * 4001 / 2);
}

TEST(ActiveTxnTable, WatermarkIsMinActiveStart) {
  ActiveTxnTable table;
  EXPECT_EQ(table.Watermark(99), 99u);  // Empty -> fallback.
  table.Register(1, 50);
  table.Register(2, 30);
  table.Register(3, 70);
  EXPECT_EQ(table.Watermark(99), 30u);
  table.Unregister(2);
  EXPECT_EQ(table.Watermark(99), 50u);
  table.Unregister(1);
  table.Unregister(3);
  EXPECT_EQ(table.Watermark(99), 99u);
}

TEST(ActiveTxnTable, RegisterAtomicUsesSource) {
  ActiveTxnTable table;
  const SnapshotRegistration reg =
      table.RegisterAtomic(7, [] { return Timestamp{42}; });
  EXPECT_EQ(reg.start_ts, 42u);
  ASSERT_NE(reg.expired, nullptr);
  EXPECT_FALSE(reg.expired->load());
  EXPECT_TRUE(table.IsActive(7));
  EXPECT_EQ(table.Watermark(100), 42u);
}

TEST(ActiveTxnTable, AgeExpiryAdvancesWatermarkAndSetsFlag) {
  ActiveTxnTable table;
  const SnapshotRegistration reg =
      table.RegisterAtomic(1, [] { return Timestamp{10}; });
  table.Register(2, 60);

  // Nothing is old enough yet: expiry is a no-op.
  auto outcome = table.ExpireSnapshots(/*max_age_ms=*/1000,
                                       /*backlog_pressure=*/false);
  EXPECT_EQ(outcome.expired_by_age, 0u);
  EXPECT_EQ(table.Watermark(100), 10u);

  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  outcome = table.ExpireSnapshots(/*max_age_ms=*/20,
                                  /*backlog_pressure=*/false);
  EXPECT_EQ(outcome.expired_by_age, 2u);
  EXPECT_TRUE(reg.expired->load());
  EXPECT_TRUE(table.IsExpired(1));
  EXPECT_TRUE(table.IsExpired(2));
  // Expired registrations no longer pin the watermark...
  EXPECT_EQ(table.Watermark(100), 100u);
  // ...but they still count as registered until the victim unregisters.
  EXPECT_EQ(table.ActiveCount(), 2u);
  EXPECT_EQ(table.snapshots_expired_age(), 2u);

  // Idempotent: a second sweep finds no fresh victims.
  outcome = table.ExpireSnapshots(20, false);
  EXPECT_EQ(outcome.expired_by_age, 0u);
  EXPECT_EQ(table.snapshots_expired_age(), 2u);
}

TEST(ActiveTxnTable, BacklogPressureEvictsOnlyOldestCohort) {
  ActiveTxnTable table;
  const SnapshotRegistration pinner =
      table.RegisterAtomic(1, [] { return Timestamp{10}; });
  table.Register(2, 10);  // Same cohort (same start ts).
  table.Register(3, 60);  // Younger snapshot: must survive.

  // Outside the grace period nothing is evicted.
  auto outcome = table.ExpireSnapshots(/*max_age_ms=*/0,
                                       /*backlog_pressure=*/true);
  EXPECT_EQ(outcome.expired_by_backlog, 0u);

  std::this_thread::sleep_for(ActiveTxnTable::kBacklogExpiryGrace +
                              std::chrono::milliseconds(5));
  outcome = table.ExpireSnapshots(0, true);
  EXPECT_EQ(outcome.expired_by_backlog, 2u);
  EXPECT_TRUE(pinner.expired->load());
  EXPECT_TRUE(table.IsExpired(2));
  EXPECT_FALSE(table.IsExpired(3));
  EXPECT_EQ(table.Watermark(100), 60u);  // Advanced to the survivor.
  EXPECT_EQ(table.snapshots_expired_backlog(), 2u);

  // Without pressure, age disabled: the survivor is never touched.
  outcome = table.ExpireSnapshots(0, false);
  EXPECT_EQ(outcome.expired_by_backlog, 0u);
  EXPECT_FALSE(table.IsExpired(3));
}

TEST(ActiveTxnTable, TracksActiveSet) {
  ActiveTxnTable table;
  table.Register(5, 1);
  table.Register(9, 2);
  EXPECT_EQ(table.ActiveCount(), 2u);
  EXPECT_EQ(table.ActiveTxnIds(), (std::vector<TxnId>{5, 9}));
  EXPECT_TRUE(table.IsActive(5));
  EXPECT_FALSE(table.IsActive(6));
  table.Unregister(5);
  EXPECT_EQ(table.ActiveCount(), 1u);
}

}  // namespace
}  // namespace neosi
