// Snapshot-isolation semantics (paper §3/§4): snapshot reads, read-your-own
// -writes, write-write conflict policies, token/index visibility.

#include <gtest/gtest.h>

#include "graph/graph_database.h"

namespace neosi {
namespace {

std::unique_ptr<GraphDatabase> OpenDb(
    ConflictPolicy policy = ConflictPolicy::kFirstUpdaterWinsWait) {
  DatabaseOptions options;
  options.in_memory = true;
  options.conflict_policy = policy;
  auto db = GraphDatabase::Open(options);
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(*db);
}

TEST(SiSemantics, SnapshotReadIgnoresLaterCommits) {
  auto db = OpenDb();
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{1})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto reader = db->Begin(IsolationLevel::kSnapshotIsolation);
  // Touch the snapshot before the concurrent write (SI defines the snapshot
  // at start; reads before/after must agree either way).
  EXPECT_EQ(reader->GetNodeProperty(id, "v")->AsInt(), 1);

  {
    auto writer = db->Begin();
    ASSERT_TRUE(writer->SetNodeProperty(id, "v", PropertyValue(int64_t{2})).ok());
    ASSERT_TRUE(writer->Commit().ok());
  }
  // The reader's snapshot still sees 1; a fresh transaction sees 2.
  EXPECT_EQ(reader->GetNodeProperty(id, "v")->AsInt(), 1);
  auto fresh = db->Begin();
  EXPECT_EQ(fresh->GetNodeProperty(id, "v")->AsInt(), 2);
}

TEST(SiSemantics, SnapshotHidesNodesCreatedAfterStart) {
  auto db = OpenDb();
  auto reader = db->Begin(IsolationLevel::kSnapshotIsolation);
  NodeId late;
  {
    auto writer = db->Begin();
    late = *writer->CreateNode({"Late"});
    ASSERT_TRUE(writer->Commit().ok());
  }
  EXPECT_TRUE(reader->GetNode(late).status().IsNotFound());
  EXPECT_FALSE(reader->NodeExists(late));
  EXPECT_TRUE(reader->GetNodesByLabel("Late")->empty());
  EXPECT_TRUE(reader->AllNodes()->empty());
}

TEST(SiSemantics, SnapshotStillSeesNodesDeletedAfterStart) {
  auto db = OpenDb();
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({"Person"}, {{"v", PropertyValue(int64_t{42})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto reader = db->Begin(IsolationLevel::kSnapshotIsolation);
  {
    auto deleter = db->Begin();
    ASSERT_TRUE(deleter->DeleteNode(id).ok());
    ASSERT_TRUE(deleter->Commit().ok());
  }
  // Tombstone (§4): the old version must still be readable by the snapshot.
  EXPECT_EQ(reader->GetNodeProperty(id, "v")->AsInt(), 42);
  EXPECT_EQ(reader->GetNodesByLabel("Person")->size(), 1u);
  auto fresh = db->Begin();
  EXPECT_TRUE(fresh->GetNode(id).status().IsNotFound());
}

TEST(SiSemantics, ReadYourOwnWrites) {
  auto db = OpenDb();
  auto txn = db->Begin();
  NodeId n = *txn->CreateNode({"Mine"}, {{"v", PropertyValue(int64_t{1})}});
  // Uncommitted creation visible to self...
  EXPECT_TRUE(txn->NodeExists(n));
  EXPECT_EQ(txn->GetNodeProperty(n, "v")->AsInt(), 1);
  EXPECT_EQ(txn->GetNodesByLabel("Mine")->size(), 1u);
  EXPECT_EQ(txn->AllNodes()->size(), 1u);
  // ... including updates layered on own writes.
  ASSERT_TRUE(txn->SetNodeProperty(n, "v", PropertyValue(int64_t{2})).ok());
  EXPECT_EQ(txn->GetNodeProperty(n, "v")->AsInt(), 2);

  // And invisible to everyone else.
  auto other = db->Begin();
  EXPECT_TRUE(other->GetNode(n).status().IsNotFound());
  EXPECT_TRUE(other->GetNodesByLabel("Mine")->empty());
}

TEST(SiSemantics, ReadYourOwnStructuralWrites) {
  auto db = OpenDb();
  NodeId a, b;
  {
    auto setup = db->Begin();
    a = *setup->CreateNode({});
    b = *setup->CreateNode({});
    ASSERT_TRUE(setup->Commit().ok());
  }
  auto txn = db->Begin();
  RelId r = *txn->CreateRelationship(a, b, "KNOWS");
  auto rels = txn->GetRelationships(a, Direction::kOutgoing);
  ASSERT_TRUE(rels.ok());
  ASSERT_EQ(rels->size(), 1u);
  EXPECT_EQ((*rels)[0], r);

  auto other = db->Begin();
  EXPECT_TRUE(other->GetRelationships(a)->empty());

  // Deleting own uncommitted rel hides it again.
  ASSERT_TRUE(txn->DeleteRelationship(r).ok());
  EXPECT_TRUE(txn->GetRelationships(a)->empty());
}

TEST(SiSemantics, FirstUpdaterWinsWait) {
  auto db = OpenDb(ConflictPolicy::kFirstUpdaterWinsWait);
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto t1 = db->Begin(IsolationLevel::kSnapshotIsolation);
  auto t2 = db->Begin(IsolationLevel::kSnapshotIsolation);
  ASSERT_TRUE(t1->SetNodeProperty(id, "v", PropertyValue(int64_t{1})).ok());
  ASSERT_TRUE(t1->Commit().ok());
  // t2's snapshot predates t1's commit: the entity is newer than t2's
  // snapshot -> first-updater-wins aborts t2 at write time.
  Status s = t2->SetNodeProperty(id, "v", PropertyValue(int64_t{2}));
  EXPECT_TRUE(s.IsAborted()) << s;
  EXPECT_EQ(t2->state(), TxnState::kAborted);

  auto fresh = db->Begin();
  EXPECT_EQ(fresh->GetNodeProperty(id, "v")->AsInt(), 1);
}

TEST(SiSemantics, FirstUpdaterWinsNoWaitAbortsOnHeldLock) {
  auto db = OpenDb(ConflictPolicy::kFirstUpdaterWinsNoWait);
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto t1 = db->Begin(IsolationLevel::kSnapshotIsolation);
  auto t2 = db->Begin(IsolationLevel::kSnapshotIsolation);
  ASSERT_TRUE(t1->SetNodeProperty(id, "v", PropertyValue(int64_t{1})).ok());
  // t1 still holds the long write lock: no-wait aborts t2 immediately.
  Status s = t2->SetNodeProperty(id, "v", PropertyValue(int64_t{2}));
  EXPECT_TRUE(s.IsAborted()) << s;
  ASSERT_TRUE(t1->Commit().ok());
}

TEST(SiSemantics, FirstCommitterWinsValidatesAtCommit) {
  auto db = OpenDb(ConflictPolicy::kFirstCommitterWins);
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto t1 = db->Begin(IsolationLevel::kSnapshotIsolation);
  auto t2 = db->Begin(IsolationLevel::kSnapshotIsolation);
  ASSERT_TRUE(t1->SetNodeProperty(id, "v", PropertyValue(int64_t{1})).ok());
  ASSERT_TRUE(t1->Commit().ok());
  // Writes succeed (no first-updater abort)...
  ASSERT_TRUE(t2->SetNodeProperty(id, "v", PropertyValue(int64_t{2})).ok());
  // ...but commit-time validation detects the overlap.
  Status s = t2->Commit();
  EXPECT_TRUE(s.IsAborted()) << s;

  auto fresh = db->Begin();
  EXPECT_EQ(fresh->GetNodeProperty(id, "v")->AsInt(), 1);
}

TEST(SiSemantics, NonConflictingWritersBothCommit) {
  auto db = OpenDb();
  NodeId a, b;
  {
    auto txn = db->Begin();
    a = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    b = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto t1 = db->Begin();
  auto t2 = db->Begin();
  ASSERT_TRUE(t1->SetNodeProperty(a, "v", PropertyValue(int64_t{1})).ok());
  ASSERT_TRUE(t2->SetNodeProperty(b, "v", PropertyValue(int64_t{2})).ok());
  EXPECT_TRUE(t1->Commit().ok());
  EXPECT_TRUE(t2->Commit().ok());
}

TEST(SiSemantics, DeleteVsUpdateConflict) {
  auto db = OpenDb();
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto t1 = db->Begin();
  auto t2 = db->Begin();
  ASSERT_TRUE(t1->DeleteNode(id).ok());
  ASSERT_TRUE(t1->Commit().ok());
  Status s = t2->SetNodeProperty(id, "v", PropertyValue(int64_t{1}));
  // Concurrent committed delete: either surfaced as a write-write conflict
  // (newer version exists) — the first-updater-wins outcome.
  EXPECT_TRUE(s.IsAborted()) << s;
}

TEST(SiSemantics, ConcurrentRelCreateVsNodeDeleteAborts) {
  auto db = OpenDb();
  NodeId a, b;
  {
    auto txn = db->Begin();
    a = *txn->CreateNode({});
    b = *txn->CreateNode({});
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto deleter = db->Begin();
  auto linker = db->Begin();
  // Linker commits an edge a->b after deleter's snapshot.
  ASSERT_TRUE(linker->CreateRelationship(a, b, "KNOWS").ok());
  ASSERT_TRUE(linker->Commit().ok());
  // Deleter sees no rels in its snapshot, but the adjacency conflict check
  // at latest-committed state must abort it instead of dangling the edge.
  Status s = deleter->DeleteNode(a);
  EXPECT_TRUE(s.IsAborted()) << s;
}

TEST(SiSemantics, TokenCreatedAfterSnapshotIsInvisible) {
  auto db = OpenDb();
  auto reader = db->Begin(IsolationLevel::kSnapshotIsolation);
  {
    auto writer = db->Begin();
    ASSERT_TRUE(writer->CreateNode({"BrandNewLabel"}).ok());
    ASSERT_TRUE(writer->Commit().ok());
  }
  // §4: a token created after the reader's snapshot is simply discarded.
  EXPECT_TRUE(reader->GetNodesByLabel("BrandNewLabel")->empty());
}

TEST(SiSemantics, ReadOnlyTransactionCommitIsCheap) {
  auto db = OpenDb();
  const Timestamp before = db->engine().oracle.LastAllocatedCommitTs();
  auto txn = db->Begin();
  ASSERT_TRUE(txn->Commit().ok());
  // No commit timestamp consumed for a read-only transaction.
  EXPECT_EQ(db->engine().oracle.LastAllocatedCommitTs(), before);
}

TEST(SiSemantics, WriteSkewIsPermitted) {
  // SI's one anomaly (§1): both transactions read the other's row and write
  // their own; both commit because the write sets do not overlap.
  auto db = OpenDb();
  NodeId x, y;
  {
    auto txn = db->Begin();
    x = *txn->CreateNode({}, {{"on", PropertyValue(true)}});
    y = *txn->CreateNode({}, {{"on", PropertyValue(true)}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto t1 = db->Begin();
  auto t2 = db->Begin();
  ASSERT_TRUE(t1->GetNodeProperty(y, "on")->AsBool());
  ASSERT_TRUE(t2->GetNodeProperty(x, "on")->AsBool());
  ASSERT_TRUE(t1->SetNodeProperty(x, "on", PropertyValue(false)).ok());
  ASSERT_TRUE(t2->SetNodeProperty(y, "on", PropertyValue(false)).ok());
  EXPECT_TRUE(t1->Commit().ok());
  EXPECT_TRUE(t2->Commit().ok());  // Write skew: both off. SI permits this.

  auto reader = db->Begin();
  EXPECT_FALSE(reader->GetNodeProperty(x, "on")->AsBool());
  EXPECT_FALSE(reader->GetNodeProperty(y, "on")->AsBool());
}

}  // namespace
}  // namespace neosi
