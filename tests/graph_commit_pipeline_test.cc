// Commit pipeline: ordered publication under concurrent, out-of-order
// commit completion.
//
// The staged pipeline lets many writers apply concurrently; the only
// ordering guarantee is the oracle watermark — a snapshot's start timestamp
// never exceeds a timestamp below which some commit is still mid-apply.
// These stress tests hammer that invariant: if the watermark ever exposed a
// gap, a reader would observe a HALF-APPLIED commit (some entities of a
// committed transaction visible, others not).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/random.h"
#include "graph/graph_database.h"

namespace neosi {
namespace {

std::unique_ptr<GraphDatabase> OpenDb(
    ConflictPolicy policy = ConflictPolicy::kFirstUpdaterWinsWait) {
  DatabaseOptions options;
  options.in_memory = true;
  options.conflict_policy = policy;
  options.background_gc_interval_ms = 0;  // Pipeline assertions, no daemon.
  auto db = GraphDatabase::Open(options);
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(*db);
}

// Each writer owns a disjoint group of nodes and commits the same value to
// every node of its group in one transaction. Commits across writers
// complete out of order (different group sizes and scheduling); readers
// continuously snapshot one group and require all of its nodes to agree —
// any mixed read is a half-applied commit leaking through the watermark.
TEST(CommitPipeline, SnapshotNeverObservesHalfAppliedCommit) {
  auto db = OpenDb();

  constexpr int kWriters = 4;
  constexpr int kReaders = 3;
  constexpr int kGroupSize = 8;
  constexpr int kCommitsPerWriter = 400;

  std::vector<std::vector<NodeId>> groups(kWriters);
  {
    auto txn = db->Begin();
    for (int w = 0; w < kWriters; ++w) {
      for (int i = 0; i < kGroupSize; ++i) {
        groups[w].push_back(
            *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}}));
      }
    }
    ASSERT_TRUE(txn->Commit().ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<int> torn_reads{0};
  std::atomic<int> reads_done{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Random rng(r * 31 + 7);
      while (!stop.load(std::memory_order_relaxed)) {
        const auto& group = groups[rng.Uniform(kWriters)];
        auto txn = db->Begin(IsolationLevel::kSnapshotIsolation);
        int64_t first = -1;
        bool torn = false;
        for (size_t i = 0; i < group.size(); ++i) {
          auto v = txn->GetNodeProperty(group[i], "v");
          if (!v.ok()) {
            torn = true;  // All nodes exist from the start: must be readable.
            break;
          }
          if (i == 0) {
            first = v->AsInt();
          } else if (v->AsInt() != first) {
            torn = true;
            break;
          }
        }
        if (torn) torn_reads.fetch_add(1);
        reads_done.fetch_add(1);
        (void)txn->Abort();
      }
    });
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 1; i <= kCommitsPerWriter; ++i) {
        auto txn = db->Begin(IsolationLevel::kSnapshotIsolation);
        bool ok = true;
        for (NodeId node : groups[w]) {
          if (!txn->SetNodeProperty(node, "v",
                                    PropertyValue(int64_t{i}))
                   .ok()) {
            ok = false;
            break;
          }
        }
        // Disjoint groups: writes never conflict, commits must succeed.
        if (ok) {
          EXPECT_TRUE(txn->Commit().ok());
        } else {
          ADD_FAILURE() << "write on private group failed";
          (void)txn->Abort();
        }
      }
    });
  }

  for (auto& t : writers) t.join();
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(torn_reads.load(), 0)
      << "a snapshot observed a half-applied commit";
  EXPECT_GT(reads_done.load(), 0);

  // Quiesced: the watermark must have caught up to every allocated
  // timestamp (no commit slot was leaked on any path).
  EXPECT_EQ(db->engine().oracle.ReadTs(),
            db->engine().oracle.LastAllocatedCommitTs());
  EXPECT_EQ(db->engine().oracle.PendingPublishCount(), 0u);

  // Every group must end at its writer's final value.
  auto txn = db->Begin();
  for (int w = 0; w < kWriters; ++w) {
    for (NodeId node : groups[w]) {
      auto v = txn->GetNodeProperty(node, "v");
      ASSERT_TRUE(v.ok());
      EXPECT_EQ(v->AsInt(), kCommitsPerWriter);
    }
  }
}

// Cross-entity invariant under CONFLICTING writers: concurrent transfers
// between accounts keep the total constant in every snapshot, with commit
// retries, aborts and out-of-order completions all in play.
TEST(CommitPipeline, ConservedTotalUnderConflictingOutOfOrderCommits) {
  auto db = OpenDb(ConflictPolicy::kFirstCommitterWins);

  constexpr int kAccounts = 16;
  constexpr int64_t kInitial = 1000;
  constexpr int kTransfersPerWriter = 300;
  constexpr int kWriters = 4;

  std::vector<NodeId> accounts;
  {
    auto txn = db->Begin();
    for (int i = 0; i < kAccounts; ++i) {
      accounts.push_back(
          *txn->CreateNode({}, {{"balance", PropertyValue(kInitial)}}));
    }
    ASSERT_TRUE(txn->Commit().ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<int> torn_audits{0};

  std::thread auditor([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto txn = db->Begin(IsolationLevel::kSnapshotIsolation);
      int64_t total = 0;
      bool ok = true;
      for (NodeId account : accounts) {
        auto v = txn->GetNodeProperty(account, "balance");
        if (!v.ok()) {
          ok = false;
          break;
        }
        total += v->AsInt();
      }
      if (ok && total != kAccounts * kInitial) torn_audits.fetch_add(1);
      (void)txn->Abort();
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Random rng(w * 7919 + 1);
      int done = 0;
      while (done < kTransfersPerWriter) {
        const NodeId from = accounts[rng.Uniform(kAccounts)];
        const NodeId to = accounts[rng.Uniform(kAccounts)];
        if (from == to) continue;
        auto txn = db->Begin(IsolationLevel::kSnapshotIsolation);
        auto a = txn->GetNodeProperty(from, "balance");
        auto b = txn->GetNodeProperty(to, "balance");
        if (!a.ok() || !b.ok() ||
            !txn->SetNodeProperty(from, "balance",
                                  PropertyValue(a->AsInt() - 1))
                 .ok() ||
            !txn->SetNodeProperty(to, "balance",
                                  PropertyValue(b->AsInt() + 1))
                 .ok()) {
          (void)txn->Abort();
          continue;  // Conflict: retry.
        }
        if (txn->Commit().ok()) ++done;  // Commit conflict: retry too.
      }
    });
  }

  for (auto& t : writers) t.join();
  stop.store(true);
  auditor.join();

  EXPECT_EQ(torn_audits.load(), 0)
      << "an audit observed a half-applied transfer";

  // Watermark caught up even though many commits aborted mid-pipeline.
  EXPECT_EQ(db->engine().oracle.ReadTs(),
            db->engine().oracle.LastAllocatedCommitTs());
  EXPECT_EQ(db->engine().oracle.PendingPublishCount(), 0u);

  auto txn = db->Begin();
  int64_t total = 0;
  for (NodeId account : accounts) {
    total += (*txn->GetNodeProperty(account, "balance")).AsInt();
  }
  EXPECT_EQ(total, kAccounts * kInitial);
}

}  // namespace
}  // namespace neosi
