// LockManager: shared/exclusive semantics, reentrancy, upgrade, wait-die,
// no-wait conflicts.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "txn/lock_manager.h"

namespace neosi {
namespace {

const EntityKey kA = EntityKey::Node(1);
const EntityKey kB = EntityKey::Node(2);

TEST(LockManager, SharedLocksCoexist) {
  LockManager lm;
  EXPECT_TRUE(lm.AcquireShared(1, kA).ok());
  EXPECT_TRUE(lm.AcquireShared(2, kA).ok());
  EXPECT_TRUE(lm.AcquireShared(3, kA).ok());
  lm.ReleaseAll(1);
  lm.ReleaseAll(2);
  lm.ReleaseAll(3);
}

TEST(LockManager, ExclusiveExcludesEverything) {
  LockManager lm;
  ASSERT_TRUE(lm.AcquireExclusive(1, kA, /*wait=*/false).ok());
  EXPECT_TRUE(lm.AcquireExclusive(2, kA, /*wait=*/false).IsAborted());
  EXPECT_EQ(lm.ExclusiveHolder(kA), 1u);
  lm.ReleaseAll(1);
  EXPECT_TRUE(lm.AcquireExclusive(2, kA, /*wait=*/false).ok());
  lm.ReleaseAll(2);
}

TEST(LockManager, ExclusiveIsReentrant) {
  LockManager lm;
  ASSERT_TRUE(lm.AcquireExclusive(1, kA, false).ok());
  ASSERT_TRUE(lm.AcquireExclusive(1, kA, false).ok());
  lm.Release(1, kA);
  // Still held once.
  EXPECT_EQ(lm.ExclusiveHolder(kA), 1u);
  lm.Release(1, kA);
  EXPECT_EQ(lm.ExclusiveHolder(kA), kNoTxn);
}

TEST(LockManager, SharedThenExclusiveUpgradeWhenSoleHolder) {
  LockManager lm;
  ASSERT_TRUE(lm.AcquireShared(1, kA).ok());
  EXPECT_TRUE(lm.AcquireExclusive(1, kA, false).ok());
  EXPECT_EQ(lm.ExclusiveHolder(kA), 1u);
  lm.ReleaseAll(1);
}

TEST(LockManager, SharedBlocksExclusiveNoWait) {
  LockManager lm;
  ASSERT_TRUE(lm.AcquireShared(1, kA).ok());
  EXPECT_TRUE(lm.AcquireExclusive(2, kA, false).IsAborted());
  lm.ReleaseAll(1);
}

TEST(LockManager, ShortReadLockReleaseUnblocksWriter) {
  LockManager lm;
  ASSERT_TRUE(lm.AcquireShared(2, kA).ok());
  std::atomic<bool> acquired{false};
  // Txn 1 is OLDER than holder 2 -> wait-die lets it wait.
  std::thread writer([&] {
    EXPECT_TRUE(lm.AcquireExclusive(1, kA, true).ok());
    acquired.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  lm.Release(2, kA);  // Short read lock released.
  writer.join();
  EXPECT_TRUE(acquired.load());
  lm.ReleaseAll(1);
}

TEST(LockManager, WaitDieYoungerRequesterDies) {
  LockManager lm;
  // Txn 1 (older) holds; txn 2 (younger) must die instead of waiting.
  ASSERT_TRUE(lm.AcquireExclusive(1, kA, true).ok());
  EXPECT_TRUE(lm.AcquireExclusive(2, kA, true).IsDeadlock());
  // Shared acquisition by a younger txn also dies.
  EXPECT_TRUE(lm.AcquireShared(3, kA).IsDeadlock());
  lm.ReleaseAll(1);
}

TEST(LockManager, WaitDieOlderRequesterWaits) {
  LockManager lm;
  ASSERT_TRUE(lm.AcquireExclusive(5, kA, true).ok());
  std::atomic<bool> acquired{false};
  std::thread older([&] {
    EXPECT_TRUE(lm.AcquireExclusive(3, kA, true).ok());
    acquired.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  lm.ReleaseAll(5);
  older.join();
  EXPECT_TRUE(acquired.load());
  lm.ReleaseAll(3);
}

TEST(LockManager, OppositeOrderDeadlockResolvedByWaitDie) {
  LockManager lm;
  ASSERT_TRUE(lm.AcquireExclusive(1, kA, true).ok());
  ASSERT_TRUE(lm.AcquireExclusive(2, kB, true).ok());
  // Txn 2 (younger) requests A held by older txn 1: dies immediately.
  EXPECT_TRUE(lm.AcquireExclusive(2, kA, true).IsDeadlock());
  lm.ReleaseAll(2);
  // Txn 1 now gets B.
  EXPECT_TRUE(lm.AcquireExclusive(1, kB, true).ok());
  lm.ReleaseAll(1);
}

TEST(LockManager, TimeoutBackstopFires) {
  LockManager lm(/*timeout_ms=*/50);
  ASSERT_TRUE(lm.AcquireExclusive(7, kA, true).ok());
  // Older txn 3 waits... and times out because 7 never releases.
  const auto t0 = std::chrono::steady_clock::now();
  Status s = lm.AcquireExclusive(3, kA, true);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_TRUE(s.IsDeadlock());
  EXPECT_GE(elapsed, 45);
  lm.ReleaseAll(7);
}

TEST(LockManager, ReleaseAllDropsEverything) {
  LockManager lm;
  ASSERT_TRUE(lm.AcquireShared(1, kA).ok());
  ASSERT_TRUE(lm.AcquireExclusive(1, kB, false).ok());
  lm.ReleaseAll(1);
  EXPECT_TRUE(lm.AcquireExclusive(2, kA, false).ok());
  EXPECT_TRUE(lm.AcquireExclusive(2, kB, false).ok());
  lm.ReleaseAll(2);
}

TEST(LockManager, StatsCountConflicts) {
  LockManager lm;
  ASSERT_TRUE(lm.AcquireExclusive(1, kA, false).ok());
  (void)lm.AcquireExclusive(2, kA, false);  // no-wait conflict
  (void)lm.AcquireExclusive(2, kA, true);   // wait-die abort
  LockManagerStats stats = lm.Stats();
  EXPECT_EQ(stats.exclusive_acquired, 1u);
  EXPECT_EQ(stats.nowait_conflicts, 1u);
  EXPECT_EQ(stats.wait_die_aborts, 1u);
  lm.ReleaseAll(1);
}

TEST(LockManager, ManyThreadsMutualExclusion) {
  LockManager lm;
  std::atomic<int> inside{0};
  std::atomic<int> max_inside{0};
  std::atomic<uint64_t> acquisitions{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 2000; ++i) {
        const TxnId txn = static_cast<TxnId>(t * 100000 + i + 1);
        if (lm.AcquireExclusive(txn, kA, false).ok()) {
          const int now = inside.fetch_add(1) + 1;
          int prev_max = max_inside.load();
          while (now > prev_max &&
                 !max_inside.compare_exchange_weak(prev_max, now)) {
          }
          acquisitions.fetch_add(1);
          inside.fetch_sub(1);
          lm.ReleaseAll(txn);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(max_inside.load(), 1) << "two txns inside an exclusive section";
  EXPECT_GT(acquisitions.load(), 0u);
}

}  // namespace
}  // namespace neosi
