// Background GC daemon: watermark pacing, backlog nudges, lifecycle.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "graph/graph_database.h"

namespace neosi {
namespace {

void AwaitDrained(GraphDatabase& db, size_t below = 1) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (db.engine().gc_list.backlog() >= below &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

TEST(GcDaemon, CollectsInBackground) {
  DatabaseOptions options;
  options.in_memory = true;
  options.background_gc_interval_ms = 5;  // Fast daemon.
  options.gc_backlog_threshold = 0;       // Interval pacing only.
  auto db = std::move(*GraphDatabase::Open(options));
  ASSERT_NE(db->gc_daemon(), nullptr);
  EXPECT_TRUE(db->gc_daemon()->running());

  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  for (int i = 1; i <= 50; ++i) {
    auto txn = db->Begin();
    ASSERT_TRUE(txn->SetNodeProperty(id, "v", PropertyValue(int64_t{i})).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  // The daemon reclaims the superseded versions without any explicit call.
  AwaitDrained(*db);
  EXPECT_EQ(db->engine().gc_list.backlog(), 0u);
  EXPECT_GT(db->gc_daemon()->passes(), 0u);
  EXPECT_GE(db->gc_daemon()->versions_pruned(), 50u);
  auto node = db->engine().cache->PeekNode(id);
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->chain.Length(), 1u);
}

TEST(GcDaemon, NudgeTriggersImmediatePass) {
  DatabaseOptions options;
  options.in_memory = true;
  options.background_gc_interval_ms = 60000;  // Effectively never on its own.
  options.gc_backlog_threshold = 0;           // Manual nudges only.
  auto db = std::move(*GraphDatabase::Open(options));
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  {
    auto txn = db->Begin();
    ASSERT_TRUE(txn->SetNodeProperty(id, "v", PropertyValue(int64_t{1})).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  ASSERT_EQ(db->engine().gc_list.backlog(), 1u);
  db->gc_daemon()->Nudge();
  AwaitDrained(*db);
  EXPECT_EQ(db->engine().gc_list.backlog(), 0u);
}

// Commit publication must nudge the daemon as soon as the backlog crosses
// the threshold — with a 60 s interval, a completed pass proves the nudge
// path fired without waiting for the timer.
TEST(GcDaemon, BacklogThresholdNudgeFiresWithoutInterval) {
  DatabaseOptions options;
  options.in_memory = true;
  options.background_gc_interval_ms = 60000;
  options.gc_backlog_threshold = 4;
  auto db = std::move(*GraphDatabase::Open(options));
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  for (int i = 1; i <= 8; ++i) {
    auto txn = db->Begin();
    ASSERT_TRUE(txn->SetNodeProperty(id, "v", PropertyValue(int64_t{i})).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  AwaitDrained(*db, /*below=*/4);
  EXPECT_LT(db->engine().gc_list.backlog(), 4u);
  EXPECT_GE(db->gc_daemon()->nudge_passes(), 1u);
  EXPECT_EQ(db->gc_daemon()->interval_passes(), 0u);
  EXPECT_GE(db->engine().gc_list.backlog_high_water(), 4u);
}

// No pass may prune a version still visible at the current watermark: an
// open snapshot pins everything it can read, however hard the daemon is
// driven.
TEST(GcDaemon, NeverReclaimsAboveTheWatermark) {
  DatabaseOptions options;
  options.in_memory = true;
  options.background_gc_interval_ms = 1;  // Aggressive.
  options.gc_backlog_threshold = 1;       // Nudge on every commit.
  auto db = std::move(*GraphDatabase::Open(options));
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{7})}});
    ASSERT_TRUE(txn->Commit().ok());
  }

  auto pinned = db->Begin(IsolationLevel::kSnapshotIsolation);
  ASSERT_EQ(pinned->GetNodeProperty(id, "v")->AsInt(), 7);

  for (int i = 0; i < 20; ++i) {
    auto txn = db->Begin();
    ASSERT_TRUE(
        txn->SetNodeProperty(id, "v", PropertyValue(int64_t{100 + i})).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  // Give the daemon ample opportunity to misbehave.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Every wakeup found nothing reclaimable below the watermark (skipped) or
  // ran a pass that pruned nothing; either way nothing was reclaimed.
  EXPECT_GT(db->gc_daemon()->idle_skips() + db->gc_daemon()->passes(), 0u);
  EXPECT_EQ(db->gc_daemon()->versions_pruned(), 0u);

  // The pinned snapshot's version (obsolete_since > its start_ts) survives;
  // every entry is still parked above the watermark.
  EXPECT_EQ(pinned->GetNodeProperty(id, "v")->AsInt(), 7);
  EXPECT_GE(db->engine().gc_list.backlog(), 20u);
  const Timestamp watermark =
      db->engine().active_txns.Watermark(db->engine().oracle.ReadTs());
  EXPECT_GT(db->engine().gc_list.OldestObsoleteSince(), watermark);

  // Releasing the snapshot lifts the watermark; the backlog drains.
  ASSERT_TRUE(pinned->Abort().ok());
  db->gc_daemon()->Nudge();
  AwaitDrained(*db);
  EXPECT_EQ(db->engine().gc_list.backlog(), 0u);
  EXPECT_EQ(db->Begin()->GetNodeProperty(id, "v")->AsInt(), 119);
}

// A pinned episode suppresses commit nudges (re-arm) — but once the pin
// releases, the daemon's short retry cadence must drain the backlog
// promptly on its own, without a manual nudge or a fresh commit, even
// when the regular interval is effectively infinite.
TEST(GcDaemon, ReclaimsPromptlyAfterPinReleaseWithoutNudge) {
  DatabaseOptions options;
  options.in_memory = true;
  options.background_gc_interval_ms = 60000;  // Only nudges/retries matter.
  options.gc_backlog_threshold = 2;
  auto db = std::move(*GraphDatabase::Open(options));
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto pinned = db->Begin(IsolationLevel::kSnapshotIsolation);
  ASSERT_EQ(pinned->GetNodeProperty(id, "v")->AsInt(), 0);
  for (int i = 1; i <= 6; ++i) {
    auto txn = db->Begin();
    ASSERT_TRUE(txn->SetNodeProperty(id, "v", PropertyValue(int64_t{i})).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  // The nudge fired into a pinned skip and re-armed; backlog is parked.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_EQ(db->engine().gc_list.backlog(), 6u);

  // Release the pin with an ABORT (no commit follows, so no fresh nudge):
  // the daemon's pinned-retry cadence alone must drain within the deadline.
  ASSERT_TRUE(pinned->Abort().ok());
  AwaitDrained(*db);
  EXPECT_EQ(db->engine().gc_list.backlog(), 0u);
  EXPECT_EQ(db->Begin()->GetNodeProperty(id, "v")->AsInt(), 6);
}

// Stop() during an in-flight pass joins cleanly: the pass finishes, state
// stays consistent, and a restart resumes reclamation.
TEST(GcDaemon, StopDuringInFlightPassIsClean) {
  DatabaseOptions options;
  options.in_memory = true;
  options.background_gc_interval_ms = 60000;
  options.gc_backlog_threshold = 0;
  auto db = std::move(*GraphDatabase::Open(options));
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  for (int i = 1; i <= 2000; ++i) {
    auto txn = db->Begin();
    ASSERT_TRUE(txn->SetNodeProperty(id, "v", PropertyValue(int64_t{i})).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  ASSERT_EQ(db->engine().gc_list.backlog(), 2000u);
  db->gc_daemon()->Nudge();  // Kick a large pass off...
  db->gc_daemon()->Stop();   // ...and stop while it may be mid-drain.
  EXPECT_FALSE(db->gc_daemon()->running());

  // Accounting stayed coherent whether or not the pass ran to completion.
  const auto& list = db->engine().gc_list;
  EXPECT_EQ(list.backlog(),
            list.total_appended() - list.total_reclaimed());

  db->gc_daemon()->Start();
  EXPECT_TRUE(db->gc_daemon()->running());
  db->gc_daemon()->Nudge();
  AwaitDrained(*db);
  EXPECT_EQ(db->engine().gc_list.backlog(), 0u);
  EXPECT_EQ(db->Begin()->GetNodeProperty(id, "v")->AsInt(), 2000);
}

TEST(GcDaemon, StopIsIdempotentAndDestructorSafe) {
  DatabaseOptions options;
  options.in_memory = true;
  options.background_gc_interval_ms = 5;
  auto db = std::move(*GraphDatabase::Open(options));
  db->gc_daemon()->Stop();
  db->gc_daemon()->Stop();
  EXPECT_FALSE(db->gc_daemon()->running());
  db->gc_daemon()->Start();
  EXPECT_TRUE(db->gc_daemon()->running());
  // Destructor stops it again.
}

TEST(GcDaemon, OnByDefaultOffWhenIntervalZero) {
  DatabaseOptions defaults;
  defaults.in_memory = true;
  auto db = std::move(*GraphDatabase::Open(defaults));
  ASSERT_NE(db->gc_daemon(), nullptr);  // Async GC is the default path.
  EXPECT_TRUE(db->gc_daemon()->running());

  DatabaseOptions off;
  off.in_memory = true;
  off.background_gc_interval_ms = 0;
  auto manual = std::move(*GraphDatabase::Open(off));
  EXPECT_EQ(manual->gc_daemon(), nullptr);
}

TEST(GcDaemon, SafeUnderConcurrentLoad) {
  DatabaseOptions options;
  options.in_memory = true;
  options.background_gc_interval_ms = 1;  // Aggressive.
  options.gc_backlog_threshold = 8;       // Plus constant nudging.
  auto db = std::move(*GraphDatabase::Open(options));
  std::vector<NodeId> nodes;
  {
    auto txn = db->Begin();
    for (int i = 0; i < 8; ++i) {
      nodes.push_back(
          *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}}));
    }
    ASSERT_TRUE(txn->Commit().ok());
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < 300; ++i) {
        auto txn = db->Begin();
        Status s = txn->SetNodeProperty(nodes[(w * 300 + i) % nodes.size()],
                                        "v", PropertyValue(int64_t{i}));
        if (s.ok()) s = txn->Commit();
        if (!s.ok() && !s.IsRetryable()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace neosi
