// Background GC daemon.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "graph/graph_database.h"

namespace neosi {
namespace {

TEST(GcDaemon, CollectsInBackground) {
  DatabaseOptions options;
  options.in_memory = true;
  options.gc_every_n_commits = 0;          // No foreground GC.
  options.background_gc_interval_ms = 5;   // Fast daemon.
  auto db = std::move(*GraphDatabase::Open(options));
  ASSERT_NE(db->gc_daemon(), nullptr);
  EXPECT_TRUE(db->gc_daemon()->running());

  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  for (int i = 1; i <= 50; ++i) {
    auto txn = db->Begin();
    ASSERT_TRUE(txn->SetNodeProperty(id, "v", PropertyValue(int64_t{i})).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  // The daemon reclaims the superseded versions without any explicit call.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (db->engine().gc_list.size() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(db->engine().gc_list.size(), 0u);
  EXPECT_GT(db->gc_daemon()->passes(), 0u);
  EXPECT_GE(db->gc_daemon()->versions_pruned(), 50u);
  auto node = db->engine().cache->PeekNode(id);
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->chain.Length(), 1u);
}

TEST(GcDaemon, NudgeTriggersImmediatePass) {
  DatabaseOptions options;
  options.in_memory = true;
  options.gc_every_n_commits = 0;
  options.background_gc_interval_ms = 60000;  // Effectively never on its own.
  auto db = std::move(*GraphDatabase::Open(options));
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  {
    auto txn = db->Begin();
    ASSERT_TRUE(txn->SetNodeProperty(id, "v", PropertyValue(int64_t{1})).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  ASSERT_EQ(db->engine().gc_list.size(), 1u);
  db->gc_daemon()->Nudge();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (db->engine().gc_list.size() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(db->engine().gc_list.size(), 0u);
}

TEST(GcDaemon, StopIsIdempotentAndDestructorSafe) {
  DatabaseOptions options;
  options.in_memory = true;
  options.background_gc_interval_ms = 5;
  auto db = std::move(*GraphDatabase::Open(options));
  db->gc_daemon()->Stop();
  db->gc_daemon()->Stop();
  EXPECT_FALSE(db->gc_daemon()->running());
  db->gc_daemon()->Start();
  EXPECT_TRUE(db->gc_daemon()->running());
  // Destructor stops it again.
}

TEST(GcDaemon, OffByDefault) {
  DatabaseOptions options;
  options.in_memory = true;
  auto db = std::move(*GraphDatabase::Open(options));
  EXPECT_EQ(db->gc_daemon(), nullptr);
}

TEST(GcDaemon, SafeUnderConcurrentLoad) {
  DatabaseOptions options;
  options.in_memory = true;
  options.gc_every_n_commits = 0;
  options.background_gc_interval_ms = 1;  // Aggressive.
  auto db = std::move(*GraphDatabase::Open(options));
  std::vector<NodeId> nodes;
  {
    auto txn = db->Begin();
    for (int i = 0; i < 8; ++i) {
      nodes.push_back(
          *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}}));
    }
    ASSERT_TRUE(txn->Commit().ok());
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < 300; ++i) {
        auto txn = db->Begin();
        Status s = txn->SetNodeProperty(nodes[(w * 300 + i) % nodes.size()],
                                        "v", PropertyValue(int64_t{i}));
        if (s.ok()) s = txn->Commit();
        if (!s.ok() && !s.IsRetryable()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : workers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace neosi
