// Protocol robustness: a hostile or broken client must never crash the
// server or leak a transaction. Malformed frames (bad CRC, oversized
// declared length, truncated bodies, unknown message types), mid-frame and
// mid-transaction disconnects, and a seeded fuzz loop all end the same way:
// the session is dropped, its transaction aborted (locks released, snapshot
// unregistered — verified through DatabaseStats), and the server keeps
// serving everyone else.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "graph/graph_database.h"
#include "server/client.h"
#include "server/server.h"

namespace neosi {
namespace {

/// Raw socket for sending hand-crafted (and deliberately broken) bytes.
class RawConn {
 public:
  bool Connect(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
      return false;
    }
    return true;
  }
  ~RawConn() { Close(); }
  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  bool Send(const std::string& bytes) {
    return fd_ >= 0 &&
           ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL) ==
               static_cast<ssize_t>(bytes.size());
  }
  /// True if the server closed the connection (EOF) within ~2s.
  bool WaitForEof() {
    timeval tv{2, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    char buf[256];
    while (true) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n == 0) return true;    // EOF: session dropped.
      if (n < 0) return false;    // Timeout: server still talking to us.
    }
  }

 private:
  int fd_ = -1;
};

class ServerProtocolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;  // In-memory: protocol behavior only.
    options.background_gc_interval_ms = 0;
    db_ = std::move(*GraphDatabase::Open(options));
    ServerOptions server_options;
    server_options.workers = 2;
    server_options.max_frame_bytes = 64 * 1024;
    server_ = std::move(*Server::Start(db_.get(), server_options));
  }
  void TearDown() override {
    server_->Stop();
    server_.reset();
    db_.reset();
  }

  uint16_t port() const { return server_->port(); }

  /// Spin-waits for the session gauge to drain to `expected` (teardown is
  /// asynchronous: the epoll thread processes the violation).
  bool WaitForSessions(uint64_t expected) {
    for (int i = 0; i < 400; ++i) {
      if (server_->sessions() == expected) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
  }

  bool WaitForActiveTxns(uint64_t expected) {
    for (int i = 0; i < 400; ++i) {
      if (db_->Stats().active_txns == expected) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
  }

  std::unique_ptr<GraphDatabase> db_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerProtocolTest, BadCrcDropsSessionWithoutReply) {
  RawConn conn;
  ASSERT_TRUE(conn.Connect(port()));
  std::string frame = EncodeFrame(EncodePing());
  frame[4] ^= 0x5A;  // Corrupt the CRC field.
  ASSERT_TRUE(conn.Send(frame));
  EXPECT_TRUE(conn.WaitForEof());
  EXPECT_TRUE(WaitForSessions(0));
  EXPECT_GE(server_->protocol_errors(), 1u);
}

TEST_F(ServerProtocolTest, CorruptedPayloadDropsSession) {
  RawConn conn;
  ASSERT_TRUE(conn.Connect(port()));
  std::string frame = EncodeFrame(EncodePing());
  frame.back() ^= 0x5A;  // Flip payload bits; CRC now mismatches.
  ASSERT_TRUE(conn.Send(frame));
  EXPECT_TRUE(conn.WaitForEof());
  EXPECT_TRUE(WaitForSessions(0));
}

TEST_F(ServerProtocolTest, OversizedFrameDroppedBeforeBuffering) {
  RawConn conn;
  ASSERT_TRUE(conn.Connect(port()));
  // Declares 16 MiB (over the 64 KiB cap) — the server must reject on the
  // HEADER, not wait for 16 MiB that will never come.
  std::string header;
  PutFixed32(&header, 16u << 20);
  PutFixed32(&header, 0xDEADBEEF);
  ASSERT_TRUE(conn.Send(header));
  EXPECT_TRUE(conn.WaitForEof());
  EXPECT_TRUE(WaitForSessions(0));
}

TEST_F(ServerProtocolTest, TruncatedBodyInsideValidFrameDropsSession) {
  RawConn conn;
  ASSERT_TRUE(conn.Connect(port()));
  // Valid frame (good CRC) whose payload claims kBegin but carries no
  // isolation/read-only bytes: the WORKER detects the violation.
  std::string payload;
  payload.push_back(static_cast<char>(MsgType::kBegin));
  ASSERT_TRUE(conn.Send(EncodeFrame(payload)));
  EXPECT_TRUE(conn.WaitForEof());
  EXPECT_TRUE(WaitForSessions(0));
  EXPECT_GE(server_->protocol_errors(), 1u);
}

TEST_F(ServerProtocolTest, UnknownMessageTypeDropsSession) {
  RawConn conn;
  ASSERT_TRUE(conn.Connect(port()));
  std::string payload;
  payload.push_back(static_cast<char>(0x7F));
  ASSERT_TRUE(conn.Send(EncodeFrame(payload)));
  EXPECT_TRUE(conn.WaitForEof());
  EXPECT_TRUE(WaitForSessions(0));
}

// The core leak check: a client begins a transaction, takes a write lock,
// then vanishes mid-frame. The server must abort the orphaned transaction —
// active_txns back to zero AND the lock actually released, proven by a
// second client writing the same node without conflict.
TEST_F(ServerProtocolTest, MidTxnDisconnectAbortsTxnAndReleasesLocks) {
  NodeId contested;
  {
    Client setup;
    ASSERT_TRUE(setup.Connect("127.0.0.1", port()).ok());
    ASSERT_TRUE(setup.Begin().ok());
    auto id = setup.CreateNode({"Hot"}, {{"v", PropertyValue(int64_t{0})}});
    ASSERT_TRUE(id.ok());
    contested = *id;
    ASSERT_TRUE(setup.Commit().ok());
  }
  ASSERT_TRUE(WaitForActiveTxns(0));

  Client holder;
  ASSERT_TRUE(holder.Connect("127.0.0.1", port()).ok());
  ASSERT_TRUE(holder.Begin().ok());
  ASSERT_TRUE(
      holder.SetNodeProperty(contested, "v", PropertyValue(int64_t{1})).ok());
  EXPECT_EQ(db_->Stats().active_txns, 1u);

  // Vanish without commit or rollback.
  holder.Close();

  ASSERT_TRUE(WaitForActiveTxns(0)) << "orphaned transaction never aborted";
  ASSERT_TRUE(WaitForSessions(0));

  // The write lock is gone: a new transaction updates the same node.
  Client prober;
  ASSERT_TRUE(prober.Connect("127.0.0.1", port()).ok());
  ASSERT_TRUE(prober.Begin().ok());
  EXPECT_TRUE(
      prober.SetNodeProperty(contested, "v", PropertyValue(int64_t{2})).ok());
  EXPECT_TRUE(prober.Commit().ok());
}

TEST_F(ServerProtocolTest, MidFrameDisconnectWithPartialHeaderIsClean) {
  RawConn conn;
  ASSERT_TRUE(conn.Connect(port()));
  ASSERT_TRUE(conn.Send(std::string("\x08\x00", 2)));  // Half a length field.
  conn.Close();
  EXPECT_TRUE(WaitForSessions(0));
  // Server still serves.
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port()).ok());
  EXPECT_TRUE(client.Ping().ok());
}

// Seeded fuzz loop: random garbage, randomly truncated real frames, and
// random bit-flips in real frames — interleaved with genuine traffic. The
// server must end every one of them with a clean drop and ZERO leaked
// transactions.
TEST_F(ServerProtocolTest, SeededFuzzLoopNeverLeaksTransactions) {
  Random rng(20260808);  // Fixed seed: failures reproduce.
  const std::vector<std::string> real_payloads = {
      EncodePing(),
      EncodeBegin(IsolationLevel::kSnapshotIsolation, false),
      EncodeCommit(),
      EncodeRollback(),
      EncodeGetNodesByLabel("Person"),
      EncodeCreateNode({"A", "B"}, {{"k", PropertyValue(int64_t{7})}}),
  };
  for (int round = 0; round < 60; ++round) {
    RawConn conn;
    ASSERT_TRUE(conn.Connect(port()));
    const uint32_t mode = rng.Uniform(4);
    std::string bytes;
    if (mode == 0) {
      // Pure garbage.
      const size_t n = 1 + rng.Uniform(200);
      for (size_t i = 0; i < n; ++i) {
        bytes.push_back(static_cast<char>(rng.Uniform(256)));
      }
    } else {
      std::string frame =
          EncodeFrame(real_payloads[rng.Uniform(real_payloads.size())]);
      if (mode == 1) {
        // Truncate.
        frame.resize(rng.Uniform(frame.size()));
      } else if (mode == 2 && !frame.empty()) {
        // Bit-flip somewhere.
        frame[rng.Uniform(frame.size())] ^=
            static_cast<char>(1u << rng.Uniform(8));
      }  // mode == 3: send the valid frame as-is.
      bytes = frame;
    }
    (void)conn.Send(bytes);
    if (rng.Uniform(2) == 0) {
      conn.Close();  // Disconnect, possibly mid-frame.
    } else {
      (void)conn.WaitForEof();
    }
  }
  EXPECT_TRUE(WaitForSessions(0));
  EXPECT_TRUE(WaitForActiveTxns(0)) << "fuzz leaked a transaction";
  // Real traffic still flows afterwards.
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", port()).ok());
  ASSERT_TRUE(client.Begin().ok());
  EXPECT_TRUE(client.CreateNode({"Survivor"}).ok());
  EXPECT_TRUE(client.Commit().ok());
}

TEST_F(ServerProtocolTest, PipelinedFramesAllAnswered) {
  // Two pings in one write: both must be answered in order (the session
  // processes buffered frames back-to-back without re-arming reads).
  RawConn conn;
  ASSERT_TRUE(conn.Connect(port()));
  ASSERT_TRUE(conn.Send(EncodeFrame(EncodePing()) +
                        EncodeFrame(EncodePing())));
  // Cheap check via the client path instead: a Client doing sequential
  // pings exercises the same loop; here just confirm the raw session stays
  // open (no EOF) after the double send.
  EXPECT_FALSE(conn.WaitForEof());
}

TEST(ServerIdleTimeout, IdleSessionDroppedAndTxnAborted) {
  DatabaseOptions options;
  options.background_gc_interval_ms = 0;
  auto db = std::move(*GraphDatabase::Open(options));
  ServerOptions server_options;
  server_options.workers = 1;
  server_options.idle_timeout_ms = 100;
  auto server = std::move(*Server::Start(db.get(), server_options));

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port()).ok());
  ASSERT_TRUE(client.Begin().ok());
  EXPECT_EQ(db->Stats().active_txns, 1u);

  // Go silent past the timeout: the sweep must reap us and abort the txn.
  bool dropped = false;
  for (int i = 0; i < 100 && !dropped; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    dropped = server->sessions() == 0;
  }
  EXPECT_TRUE(dropped);
  EXPECT_GE(server->idle_drops(), 1u);
  EXPECT_EQ(db->Stats().active_txns, 0u);

  // An ACTIVE session is not swept: ping inside the window repeatedly.
  Client busy;
  ASSERT_TRUE(busy.Connect("127.0.0.1", server->port()).ok());
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(busy.Ping().ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  EXPECT_TRUE(busy.Ping().ok());
  server->Stop();
}

}  // namespace
}  // namespace neosi
