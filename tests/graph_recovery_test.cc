// Durability & crash recovery: WAL replay, torn tails, crash injection
// around store application, checkpointing. These tests use on-disk mode.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>

#include "graph/graph_database.h"

namespace neosi {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("neosi_rec_" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  DatabaseOptions DiskOptions() {
    DatabaseOptions options;
    options.in_memory = false;
    options.path = dir_.string();
    options.background_gc_interval_ms = 0;  // Deterministic: no daemons.
    options.checkpoint_interval_ms = 0;
    return options;
  }

  std::filesystem::path dir_;
};

TEST_F(RecoveryTest, CommittedDataSurvivesReopen) {
  NodeId a, b;
  RelId rel;
  {
    auto db = std::move(*GraphDatabase::Open(DiskOptions()));
    auto txn = db->Begin();
    a = *txn->CreateNode({"Person"}, {{"name", PropertyValue("alice")}});
    b = *txn->CreateNode({"Person"}, {{"name", PropertyValue("bob")}});
    rel = *txn->CreateRelationship(a, b, "KNOWS",
                                   {{"w", PropertyValue(int64_t{3})}});
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto db = std::move(*GraphDatabase::Open(DiskOptions()));
  auto reader = db->Begin();
  EXPECT_EQ(reader->GetNodeProperty(a, "name")->AsString(), "alice");
  EXPECT_EQ(reader->GetRelProperty(rel, "w")->AsInt(), 3);
  auto rels = reader->GetRelationships(a, Direction::kOutgoing);
  ASSERT_TRUE(rels.ok());
  ASSERT_EQ(rels->size(), 1u);
  // Indexes rebuilt.
  EXPECT_EQ(reader->GetNodesByLabel("Person")->size(), 2u);
  EXPECT_EQ(reader->GetNodesByProperty("name", PropertyValue("bob"))->size(),
            1u);
}

TEST_F(RecoveryTest, UncommittedDataDoesNotSurvive) {
  {
    auto db = std::move(*GraphDatabase::Open(DiskOptions()));
    auto txn = db->Begin();
    ASSERT_TRUE(txn->CreateNode({"Keep"}).ok());
    ASSERT_TRUE(txn->Commit().ok());
    auto doomed = db->Begin();
    ASSERT_TRUE(doomed->CreateNode({"Doomed"}).ok());
    // No commit; the process "dies" (db destructor aborts it anyway, but
    // even a hard kill would leave no WAL record).
  }
  auto db = std::move(*GraphDatabase::Open(DiskOptions()));
  auto reader = db->Begin();
  EXPECT_EQ(reader->GetNodesByLabel("Keep")->size(), 1u);
  EXPECT_TRUE(reader->GetNodesByLabel("Doomed")->empty());
}

TEST_F(RecoveryTest, CrashBeforeStoreApplyIsRepairedFromWal) {
  NodeId id;
  {
    auto db = std::move(*GraphDatabase::Open(DiskOptions()));
    {
      auto txn = db->Begin();
      id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{1})}});
      ASSERT_TRUE(txn->Commit().ok());
    }
    db->engine().test_hooks.crash_before_store_apply.store(true);
    auto txn = db->Begin();
    ASSERT_TRUE(txn->SetNodeProperty(id, "v", PropertyValue(int64_t{2})).ok());
    Status s = txn->Commit();
    EXPECT_TRUE(s.IsIOError()) << s;  // Simulated crash; WAL has the record.
  }
  // Reopen: replay must apply the update even though the store never saw it.
  auto db = std::move(*GraphDatabase::Open(DiskOptions()));
  auto reader = db->Begin();
  EXPECT_EQ(reader->GetNodeProperty(id, "v")->AsInt(), 2);
}

TEST_F(RecoveryTest, CrashMidStoreApplyIsRepairedFromWal) {
  NodeId a, b;
  {
    auto db = std::move(*GraphDatabase::Open(DiskOptions()));
    {
      auto txn = db->Begin();
      a = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{1})}});
      b = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{1})}});
      ASSERT_TRUE(txn->Commit().ok());
    }
    // Crash after exactly one of the two store writes.
    db->engine().test_hooks.crash_after_n_store_ops.store(1);
    auto txn = db->Begin();
    ASSERT_TRUE(txn->SetNodeProperty(a, "v", PropertyValue(int64_t{2})).ok());
    ASSERT_TRUE(txn->SetNodeProperty(b, "v", PropertyValue(int64_t{2})).ok());
    EXPECT_TRUE(txn->Commit().IsIOError());
  }
  auto db = std::move(*GraphDatabase::Open(DiskOptions()));
  auto reader = db->Begin();
  // Atomicity across the crash: both updates present (WAL replay repaired
  // the missing one).
  EXPECT_EQ(reader->GetNodeProperty(a, "v")->AsInt(), 2);
  EXPECT_EQ(reader->GetNodeProperty(b, "v")->AsInt(), 2);
}

TEST_F(RecoveryTest, CrashDuringRelCreationRepairsChains) {
  NodeId a, b;
  {
    auto db = std::move(*GraphDatabase::Open(DiskOptions()));
    {
      auto txn = db->Begin();
      a = *txn->CreateNode({});
      b = *txn->CreateNode({});
      ASSERT_TRUE(txn->Commit().ok());
    }
    db->engine().test_hooks.crash_before_store_apply.store(true);
    auto txn = db->Begin();
    ASSERT_TRUE(txn->CreateRelationship(a, b, "KNOWS").ok());
    EXPECT_TRUE(txn->Commit().IsIOError());
  }
  auto db = std::move(*GraphDatabase::Open(DiskOptions()));
  auto reader = db->Begin();
  auto rels = reader->GetRelationships(a, Direction::kOutgoing);
  ASSERT_TRUE(rels.ok());
  ASSERT_EQ(rels->size(), 1u);
  auto view = reader->GetRelationship((*rels)[0]);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->dst, b);
}

TEST_F(RecoveryTest, TornWalTailIsDiscarded) {
  NodeId id;
  std::filesystem::path wal_path;
  {
    auto db = std::move(*GraphDatabase::Open(DiskOptions()));
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{1})}});
    ASSERT_TRUE(txn->Commit().ok());
    // The newest WAL segment file is where a torn append would land.
    wal_path =
        dir_ / db->engine().store.wal().SegmentNameOf(
                   db->engine().store.wal().NextLsn());
  }
  // Append garbage to simulate a torn write.
  {
    FILE* f = fopen(wal_path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char garbage[] = "\x37\x00\x00\x00garbage-torn-frame";
    fwrite(garbage, 1, sizeof(garbage), f);
    fclose(f);
  }
  auto db = std::move(*GraphDatabase::Open(DiskOptions()));
  auto reader = db->Begin();
  EXPECT_EQ(reader->GetNodeProperty(id, "v")->AsInt(), 1);
}

TEST_F(RecoveryTest, CheckpointTruncatesWalAndPreservesData) {
  NodeId id;
  {
    auto db = std::move(*GraphDatabase::Open(DiskOptions()));
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{5})}});
    ASSERT_TRUE(txn->Commit().ok());
    EXPECT_GT(db->engine().store.wal().SizeBytes(), 0u);
    ASSERT_TRUE(db->Checkpoint().ok());
    EXPECT_EQ(db->engine().store.wal().SizeBytes(), 0u);
  }
  auto db = std::move(*GraphDatabase::Open(DiskOptions()));
  auto reader = db->Begin();
  EXPECT_EQ(reader->GetNodeProperty(id, "v")->AsInt(), 5);
}

TEST_F(RecoveryTest, TimestampsResumeAboveRecoveredMax) {
  Timestamp before;
  {
    auto db = std::move(*GraphDatabase::Open(DiskOptions()));
    for (int i = 0; i < 5; ++i) {
      auto txn = db->Begin();
      ASSERT_TRUE(txn->CreateNode({}).ok());
      ASSERT_TRUE(txn->Commit().ok());
    }
    before = db->engine().oracle.ReadTs();
  }
  auto db = std::move(*GraphDatabase::Open(DiskOptions()));
  EXPECT_GE(db->engine().oracle.ReadTs(), before);
  // New commits get strictly newer timestamps.
  auto txn = db->Begin();
  ASSERT_TRUE(txn->CreateNode({}).ok());
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_GT(db->engine().oracle.ReadTs(), before);
}

TEST_F(RecoveryTest, DeletesSurviveRecovery) {
  NodeId keep, gone;
  {
    auto db = std::move(*GraphDatabase::Open(DiskOptions()));
    {
      auto txn = db->Begin();
      keep = *txn->CreateNode({"K"});
      gone = *txn->CreateNode({"G"});
      ASSERT_TRUE(txn->Commit().ok());
    }
    auto txn = db->Begin();
    ASSERT_TRUE(txn->DeleteNode(gone).ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto db = std::move(*GraphDatabase::Open(DiskOptions()));
  auto reader = db->Begin();
  EXPECT_TRUE(reader->GetNode(keep).ok());
  EXPECT_TRUE(reader->GetNode(gone).status().IsNotFound());
  EXPECT_TRUE(reader->GetNodesByLabel("G")->empty());
}

TEST_F(RecoveryTest, GcPurgesSurviveRecovery) {
  NodeId a, b;
  RelId rel;
  {
    auto db = std::move(*GraphDatabase::Open(DiskOptions()));
    {
      auto txn = db->Begin();
      a = *txn->CreateNode({});
      b = *txn->CreateNode({});
      rel = *txn->CreateRelationship(a, b, "R");
      ASSERT_TRUE(txn->Commit().ok());
    }
    {
      auto txn = db->Begin();
      ASSERT_TRUE(txn->DeleteRelationship(rel).ok());
      ASSERT_TRUE(txn->Commit().ok());
    }
    db->RunGc();
    ASSERT_FALSE(db->engine().store.RelInUse(rel));
  }
  auto db = std::move(*GraphDatabase::Open(DiskOptions()));
  EXPECT_FALSE(db->engine().store.RelInUse(rel));
  auto reader = db->Begin();
  EXPECT_TRUE(reader->GetRelationships(a)->empty());
  EXPECT_TRUE(reader->GetRelationships(b)->empty());
}

// Fuzzy checkpoint vs in-flight commit: a commit parked between its WAL
// append and its store apply PINS its record's lsn. Checkpoint() must NOT
// block on it — it truncates only the prefix below the pin, writes a
// marker, and completes while the commit is still in flight. The pinned
// record survives the truncation and recovery still replays it.
TEST_F(RecoveryTest, CheckpointDoesNotBlockOnInFlightCommit) {
  NodeId id;
  {
    auto options = DiskOptions();
    options.sync_commits = true;  // Through the group committer.
    auto db = std::move(*GraphDatabase::Open(options));
    {
      auto txn = db->Begin();
      id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
      ASSERT_TRUE(txn->Commit().ok());
    }

    // Park the next commit between its WAL append and its store apply.
    db->engine().test_hooks.stall_before_store_apply.store(true);
    std::atomic<bool> commit_acked{false};
    std::thread committer([&] {
      auto txn = db->Begin();
      ASSERT_TRUE(
          txn->SetNodeProperty(id, "v", PropertyValue(int64_t{42})).ok());
      ASSERT_TRUE(txn->Commit().ok());
      commit_acked.store(true);
    });
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (db->engine().test_hooks.stalled_commits.load() == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_GE(db->engine().test_hooks.stalled_commits.load(), 1u);

    // The checkpoint completes while the commit is still parked — no
    // drain, no stall — and must leave the unapplied record in the log.
    ASSERT_TRUE(db->Checkpoint().ok());
    EXPECT_FALSE(commit_acked.load());
    EXPECT_GT(db->engine().store.wal().SizeBytes(), 0u)
        << "checkpoint truncated a pinned (unapplied) commit record";
    EXPECT_GE(db->engine().store.wal().PinnedCount(), 1u);
    const auto stats = db->engine().store.Stats();
    EXPECT_GE(stats.checkpoint_markers, 1u);

    // Release: the commit applies and acks; a later checkpoint may then
    // truncate past it.
    db->engine().test_hooks.stall_before_store_apply.store(false);
    committer.join();
    EXPECT_TRUE(commit_acked.load());
    ASSERT_TRUE(db->Checkpoint().ok());
    EXPECT_EQ(db->engine().store.wal().SizeBytes(), 0u);
  }
  // Reopen: the commit that raced the checkpoint survived.
  auto db = std::move(*GraphDatabase::Open(DiskOptions()));
  auto reader = db->Begin();
  EXPECT_EQ(reader->GetNodeProperty(id, "v")->AsInt(), 42);
}

// The other direction of the same race: commits must keep completing while
// a checkpoint is in progress (parked mid-checkpoint via the stall hook).
// This is the whole point of the fuzzy checkpoint — no commit stall.
TEST_F(RecoveryTest, CommitsCompleteDuringInProgressCheckpoint) {
  auto options = DiskOptions();
  options.sync_commits = true;
  auto db = std::move(*GraphDatabase::Open(options));
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    ASSERT_TRUE(txn->Commit().ok());
  }

  // Park the checkpoint after its store sync, before its marker write.
  db->engine().store.checkpoint_hooks.stall_before_marker.store(true);
  std::atomic<bool> checkpoint_done{false};
  std::thread checkpointer([&] {
    ASSERT_TRUE(db->Checkpoint().ok());
    checkpoint_done.store(true);
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (db->engine().store.checkpoint_hooks.stalls.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(db->engine().store.checkpoint_hooks.stalls.load(), 1u);

  // Full durable commits complete while the checkpoint is mid-flight.
  for (int i = 1; i <= 5; ++i) {
    auto txn = db->Begin();
    ASSERT_TRUE(
        txn->SetNodeProperty(id, "v", PropertyValue(int64_t{i})).ok());
    ASSERT_TRUE(txn->Commit().ok())
        << "commit " << i << " blocked behind an in-progress checkpoint";
  }
  EXPECT_FALSE(checkpoint_done.load());

  db->engine().store.checkpoint_hooks.stall_before_marker.store(false);
  checkpointer.join();
  EXPECT_TRUE(checkpoint_done.load());
  auto reader = db->Begin();
  EXPECT_EQ(reader->GetNodeProperty(id, "v")->AsInt(), 5);
}

// Crash injected between the marker write and the prefix truncation: the
// log still holds the whole prefix plus the marker. Recovery must replay
// from the marker's stable LSN and reproduce the pre-crash committed state
// (including the commit whose record was appended but never store-applied).
TEST_F(RecoveryTest, CrashBetweenMarkerAndTruncationRecovers) {
  NodeId applied, unapplied;
  {
    auto db = std::move(*GraphDatabase::Open(DiskOptions()));
    {
      auto txn = db->Begin();
      applied = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{1})}});
      unapplied = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{1})}});
      ASSERT_TRUE(txn->Commit().ok());
    }
    // This commit reaches the WAL but "crashes" before the store apply; its
    // lsn stays pinned, so the checkpoint's stable LSN stops below it.
    db->engine().test_hooks.crash_before_store_apply.store(true);
    {
      auto txn = db->Begin();
      ASSERT_TRUE(
          txn->SetNodeProperty(unapplied, "v", PropertyValue(int64_t{7}))
              .ok());
      EXPECT_TRUE(txn->Commit().IsIOError());
    }
    db->engine().test_hooks.crash_before_store_apply.store(false);

    // Checkpoint crashes after writing + syncing the marker, before
    // truncating the prefix.
    db->engine().store.checkpoint_hooks.crash_after_marker.store(true);
    EXPECT_TRUE(db->Checkpoint().IsIOError());
    const auto stats = db->engine().store.Stats();
    EXPECT_GE(stats.checkpoint_markers, 1u);
    EXPECT_EQ(stats.checkpoints, 0u);  // Truncation never happened.
  }
  // Reopen: replay starts from the marker's stable LSN; the pinned
  // (unapplied) record above it is replayed, the synced prefix below it is
  // skipped — and the state matches everything ever acked.
  auto db = std::move(*GraphDatabase::Open(DiskOptions()));
  auto reader = db->Begin();
  EXPECT_EQ(reader->GetNodeProperty(applied, "v")->AsInt(), 1);
  EXPECT_EQ(reader->GetNodeProperty(unapplied, "v")->AsInt(), 7);
}

// Stress the same race: writers hammer group commits while checkpoints run
// concurrently; after reopen EVERY acked commit must be recovered.
TEST_F(RecoveryTest, CheckpointRacingGroupCommitsLosesNoAckedCommit) {
  constexpr int kWriters = 4;
  constexpr int kCommitsPerWriter = 60;
  std::vector<NodeId> nodes(kWriters);
  // acked[w] = highest value writer w saw acknowledged.
  std::array<std::atomic<int64_t>, kWriters> acked{};
  {
    auto options = DiskOptions();
    options.sync_commits = true;
    auto db = std::move(*GraphDatabase::Open(options));
    {
      auto txn = db->Begin();
      for (int w = 0; w < kWriters; ++w) {
        nodes[w] =
            *txn->CreateNode({}, {{"v", PropertyValue(int64_t{-1})}});
      }
      ASSERT_TRUE(txn->Commit().ok());
    }
    std::atomic<bool> stop{false};
    std::thread checkpointer([&] {
      while (!stop.load()) {
        ASSERT_TRUE(db->Checkpoint().ok());
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([&, w] {
        for (int i = 0; i < kCommitsPerWriter; ++i) {
          auto txn = db->Begin();
          ASSERT_TRUE(txn->SetNodeProperty(nodes[w], "v",
                                           PropertyValue(int64_t{i}))
                          .ok());
          ASSERT_TRUE(txn->Commit().ok());
          acked[w].store(i);
        }
      });
    }
    for (auto& t : writers) t.join();
    stop.store(true);
    checkpointer.join();
  }
  auto db = std::move(*GraphDatabase::Open(DiskOptions()));
  auto reader = db->Begin();
  for (int w = 0; w < kWriters; ++w) {
    EXPECT_EQ(reader->GetNodeProperty(nodes[w], "v")->AsInt(),
              acked[w].load())
        << "writer " << w << ": an acked commit vanished across reopen";
  }
}

// Replay crossing many WAL segment files: with no checkpoint ever taken,
// recovery must discover, order and walk the whole chain.
TEST_F(RecoveryTest, ReplaySpansManySegments) {
  auto options = DiskOptions();
  options.wal_segment_size = 512;
  NodeId id;
  {
    auto db = std::move(*GraphDatabase::Open(options));
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    ASSERT_TRUE(txn->Commit().ok());
    for (int i = 1; i <= 200; ++i) {
      auto update = db->Begin();
      ASSERT_TRUE(
          update->SetNodeProperty(id, "v", PropertyValue(int64_t{i})).ok());
      ASSERT_TRUE(update->Commit().ok());
    }
    ASSERT_GT(db->engine().store.wal().SegmentCount(), 2u);
  }
  int segment_files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    segment_files += name.rfind("wal.", 0) == 0 ? 1 : 0;
  }
  EXPECT_GT(segment_files, 2);
  auto db = std::move(*GraphDatabase::Open(options));
  auto reader = db->Begin();
  EXPECT_EQ(reader->GetNodeProperty(id, "v")->AsInt(), 200);
  EXPECT_GT(db->engine().store.wal().SegmentCount(), 2u);
}

TEST_F(RecoveryTest, TokensSurviveRecovery) {
  {
    auto db = std::move(*GraphDatabase::Open(DiskOptions()));
    auto txn = db->Begin();
    ASSERT_TRUE(txn->CreateNode({"Alpha", "Beta"},
                                {{"key1", PropertyValue(int64_t{1})}})
                    .ok());
    ASSERT_TRUE(txn->Commit().ok());
  }
  auto db = std::move(*GraphDatabase::Open(DiskOptions()));
  EXPECT_TRUE(db->engine().store.labels().Lookup("Alpha").ok());
  EXPECT_TRUE(db->engine().store.labels().Lookup("Beta").ok());
  EXPECT_TRUE(db->engine().store.prop_keys().Lookup("key1").ok());
}

// A created-then-deleted entity is annihilated at commit: every one of its
// WAL ops — including the full-state kNodeState/kRelState ops — must be
// dropped from the commit record, because its id goes straight back to the
// free list. A leaked state op would be replayed against whatever live
// entity later recycled the id, resurrecting the dead entity's payload on
// top of it.
TEST_F(RecoveryTest, AnnihilatedEntityLeavesNoStateInWalReplay) {
  NodeId keep, doomed, reused;
  {
    auto db = std::move(*GraphDatabase::Open(DiskOptions()));
    {
      auto txn = db->Begin();
      keep = *txn->CreateNode({"Keep"}, {{"name", PropertyValue("keep")}});
      doomed = *txn->CreateNode({});
      // Pile full-state ops onto the doomed entities before killing them.
      ASSERT_TRUE(
          txn->SetNodeProperty(doomed, "secret", PropertyValue(int64_t{99}))
              .ok());
      ASSERT_TRUE(txn->AddLabel(doomed, "Dead").ok());
      RelId tmp = *txn->CreateRelationship(keep, doomed, "TMP",
                                           {{"w", PropertyValue(int64_t{1})}});
      ASSERT_TRUE(
          txn->SetRelProperty(tmp, "w", PropertyValue(int64_t{2})).ok());
      ASSERT_TRUE(txn->DeleteRelationship(tmp).ok());
      ASSERT_TRUE(txn->DeleteNode(doomed).ok());
      ASSERT_TRUE(txn->Commit().ok());
    }
    {
      // The annihilated node's id is back on the free list; the next
      // creation recycles it. A surviving kNodeState op for the old id
      // would now target this live node during replay.
      auto txn = db->Begin();
      reused = *txn->CreateNode({"Fresh"}, {{"name", PropertyValue("fresh")}});
      ASSERT_TRUE(txn->Commit().ok());
    }
    EXPECT_EQ(reused, doomed);
  }
  // Reopen: full WAL replay (no checkpoint was ever taken).
  auto db = std::move(*GraphDatabase::Open(DiskOptions()));
  auto reader = db->Begin();
  EXPECT_EQ(reader->GetNodeProperty(keep, "name")->AsString(), "keep");
  EXPECT_EQ(reader->GetNodeProperty(reused, "name")->AsString(), "fresh");
  // Nothing of the annihilated node leaked onto the recycled id.
  EXPECT_TRUE(reader->GetNodeProperty(reused, "secret").status().IsNotFound());
  EXPECT_TRUE(reader->GetNodesByLabel("Dead")->empty());
  auto rels = reader->GetRelationships(keep, Direction::kOutgoing);
  ASSERT_TRUE(rels.ok());
  EXPECT_TRUE(rels->empty());
}

}  // namespace
}  // namespace neosi
