// VersionChain: visibility rule, read-your-own-writes, commit/abort, GC
// pruning — the heart of §3's read rule.

#include <gtest/gtest.h>

#include "mvcc/version_chain.h"

namespace neosi {
namespace {

VersionData Data(int64_t v, bool deleted = false) {
  VersionData data;
  data.deleted = deleted;
  data.props[1] = PropertyValue(v);
  return data;
}

int64_t ValueOf(const std::shared_ptr<const Version>& v) {
  return v->data.props.at(1).AsInt();
}

TEST(VersionChain, EmptyChainHasNothingVisible) {
  VersionChain chain;
  EXPECT_EQ(chain.Visible(100, 1), nullptr);
  EXPECT_EQ(chain.LatestCommitted(), nullptr);
  EXPECT_EQ(chain.Length(), 0u);
  EXPECT_TRUE(chain.Empty());
  EXPECT_EQ(chain.NewestCommitTs(), kNoTimestamp);
}

TEST(VersionChain, InstallCommitRead) {
  VersionChain chain;
  auto v = chain.InstallUncommitted(7, Data(10));
  ASSERT_TRUE(v.ok());
  // Uncommitted: visible only to the writer.
  EXPECT_EQ(chain.Visible(100, 7), *v);
  EXPECT_EQ(chain.Visible(100, 8), nullptr);
  EXPECT_TRUE(chain.HasUncommitted());

  auto superseded = chain.CommitHead(7, 50);
  ASSERT_TRUE(superseded.ok());
  EXPECT_EQ(*superseded, nullptr);  // First version supersedes nothing.
  EXPECT_EQ(ValueOf(chain.Visible(50, 8)), 10);
  EXPECT_EQ(chain.Visible(49, 8), nullptr);  // Before the commit.
  EXPECT_EQ(chain.NewestCommitTs(), 50u);
}

TEST(VersionChain, ReadRuleMostRecentAtOrBeforeStart) {
  VersionChain chain;
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(chain.InstallUncommitted(i, Data(i * 10)).ok());
    ASSERT_TRUE(chain.CommitHead(i, i * 100).ok());
  }
  // §3: "the most recent committed version ... with a commit timestamp equal
  // or lower than the start timestamp".
  EXPECT_EQ(ValueOf(chain.Visible(100, 99)), 10);
  EXPECT_EQ(ValueOf(chain.Visible(250, 99)), 20);
  EXPECT_EQ(ValueOf(chain.Visible(300, 99)), 30);
  EXPECT_EQ(ValueOf(chain.Visible(kMaxTimestamp, 99)), 50);
  EXPECT_EQ(chain.Visible(99, 99), nullptr);
  EXPECT_EQ(chain.Length(), 5u);
}

TEST(VersionChain, SameTxnCollapsesPendingWrites) {
  VersionChain chain;
  ASSERT_TRUE(chain.InstallUncommitted(1, Data(1)).ok());
  ASSERT_TRUE(chain.CommitHead(1, 10).ok());
  // Two writes by txn 2 produce ONE pending version.
  ASSERT_TRUE(chain.InstallUncommitted(2, Data(2)).ok());
  ASSERT_TRUE(chain.InstallUncommitted(2, Data(3)).ok());
  EXPECT_EQ(chain.Length(), 2u);
  EXPECT_EQ(ValueOf(chain.Visible(100, 2)), 3);
  ASSERT_TRUE(chain.CommitHead(2, 20).ok());
  EXPECT_EQ(ValueOf(chain.Visible(20, 99)), 3);
}

TEST(VersionChain, ConcurrentUncommittedWritersIsEngineBug) {
  VersionChain chain;
  ASSERT_TRUE(chain.InstallUncommitted(1, Data(1)).ok());
  auto second = chain.InstallUncommitted(2, Data(2));
  EXPECT_TRUE(second.status().IsInternal());
}

TEST(VersionChain, AbortRemovesPendingOnly) {
  VersionChain chain;
  ASSERT_TRUE(chain.InstallUncommitted(1, Data(1)).ok());
  ASSERT_TRUE(chain.CommitHead(1, 10).ok());
  ASSERT_TRUE(chain.InstallUncommitted(2, Data(2)).ok());
  chain.AbortHead(2);
  EXPECT_EQ(chain.Length(), 1u);
  EXPECT_EQ(ValueOf(chain.Visible(10, 99)), 1);
  // Abort by the wrong txn is a no-op.
  ASSERT_TRUE(chain.InstallUncommitted(3, Data(3)).ok());
  chain.AbortHead(4);
  EXPECT_EQ(chain.Length(), 2u);
  chain.AbortHead(3);
  EXPECT_EQ(chain.Length(), 1u);
}

TEST(VersionChain, CommitWithoutPendingIsInternal) {
  VersionChain chain;
  EXPECT_TRUE(chain.CommitHead(1, 10).status().IsInternal());
  ASSERT_TRUE(chain.InstallUncommitted(1, Data(1)).ok());
  EXPECT_TRUE(chain.CommitHead(2, 10).status().IsInternal());  // Wrong txn.
}

TEST(VersionChain, CommitReturnsSupersededVersion) {
  VersionChain chain;
  ASSERT_TRUE(chain.InstallUncommitted(1, Data(1)).ok());
  ASSERT_TRUE(chain.CommitHead(1, 10).ok());
  ASSERT_TRUE(chain.InstallUncommitted(2, Data(2)).ok());
  auto superseded = chain.CommitHead(2, 20);
  ASSERT_TRUE(superseded.ok());
  ASSERT_NE(*superseded, nullptr);
  EXPECT_EQ((*superseded)->commit_ts, 10u);
}

TEST(VersionChain, TombstoneVersionVisibleAsDeleted) {
  VersionChain chain;
  ASSERT_TRUE(chain.InstallUncommitted(1, Data(1)).ok());
  ASSERT_TRUE(chain.CommitHead(1, 10).ok());
  ASSERT_TRUE(chain.InstallUncommitted(2, Data(0, /*deleted=*/true)).ok());
  ASSERT_TRUE(chain.CommitHead(2, 20).ok());
  // Old snapshot: live version. New snapshot: tombstone.
  EXPECT_FALSE(chain.Visible(15, 99)->data.deleted);
  EXPECT_TRUE(chain.Visible(25, 99)->data.deleted);
}

TEST(VersionChain, RemoveUnlinksSpecificVersion) {
  VersionChain chain;
  std::vector<std::shared_ptr<Version>> versions;
  for (int i = 1; i <= 4; ++i) {
    versions.push_back(*chain.InstallUncommitted(i, Data(i)));
    ASSERT_TRUE(chain.CommitHead(i, i * 10).ok());
  }
  // Remove a middle version.
  EXPECT_TRUE(chain.Remove(versions[1]));
  EXPECT_EQ(chain.Length(), 3u);
  EXPECT_FALSE(chain.Remove(versions[1]));  // Already gone.
  // Remove the head.
  EXPECT_TRUE(chain.Remove(versions[3]));
  EXPECT_EQ(ValueOf(chain.Visible(kMaxTimestamp, 99)), 3);
  // Remove the tail.
  EXPECT_TRUE(chain.Remove(versions[0]));
  EXPECT_EQ(chain.Length(), 1u);
}

TEST(VersionChain, PruneSupersededUpToWatermark) {
  VersionChain chain;
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(chain.InstallUncommitted(i, Data(i)).ok());
    ASSERT_TRUE(chain.CommitHead(i, i * 10).ok());
  }
  // Watermark 35: newest committed <= 35 is ts 30; versions 10, 20 die.
  EXPECT_EQ(chain.PruneSupersededUpTo(35), 2u);
  EXPECT_EQ(chain.Length(), 3u);
  EXPECT_EQ(ValueOf(chain.Visible(30, 99)), 3);
  // Idempotent.
  EXPECT_EQ(chain.PruneSupersededUpTo(35), 0u);
  // Everything below the max: keep only the newest.
  EXPECT_EQ(chain.PruneSupersededUpTo(1000), 2u);
  EXPECT_EQ(chain.Length(), 1u);
}

TEST(VersionChain, PruneRespectsUncommittedHead) {
  VersionChain chain;
  ASSERT_TRUE(chain.InstallUncommitted(1, Data(1)).ok());
  ASSERT_TRUE(chain.CommitHead(1, 10).ok());
  ASSERT_TRUE(chain.InstallUncommitted(2, Data(2)).ok());
  // Pending head is not committed; the committed version survives.
  EXPECT_EQ(chain.PruneSupersededUpTo(1000), 0u);
  EXPECT_EQ(chain.Length(), 2u);
}

TEST(VersionChain, LongChainDestructionDoesNotOverflowStack) {
  auto chain = std::make_unique<VersionChain>();
  for (int i = 1; i <= 200000; ++i) {
    ASSERT_TRUE(chain->InstallUncommitted(i, VersionData{}).ok());
    ASSERT_TRUE(chain->CommitHead(i, i).ok());
  }
  EXPECT_EQ(chain->Length(), 200000u);
  chain.reset();  // Iterative destructor must not blow the stack.
}

}  // namespace
}  // namespace neosi
