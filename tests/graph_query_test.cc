// Declarative pattern-matching queries.

#include <gtest/gtest.h>

#include "graph/graph_database.h"
#include "graph/query.h"

namespace neosi {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.in_memory = true;
    db_ = std::move(*GraphDatabase::Open(options));
    auto txn = db_->Begin();
    // People with ages, companies, employment and friendship edges.
    auto person = [&](const char* name, int64_t age) {
      return *txn->CreateNode({"Person"}, {{"name", PropertyValue(name)},
                                           {"age", PropertyValue(age)}});
    };
    alice_ = person("alice", 34);
    bob_ = person("bob", 29);
    carol_ = person("carol", 41);
    dave_ = person("dave", 25);
    acme_ = *txn->CreateNode({"Company"}, {{"name", PropertyValue("acme")}});
    globex_ =
        *txn->CreateNode({"Company"}, {{"name", PropertyValue("globex")}});
    (void)*txn->CreateRelationship(alice_, acme_, "WORKS_AT");
    (void)*txn->CreateRelationship(bob_, acme_, "WORKS_AT");
    (void)*txn->CreateRelationship(carol_, globex_, "WORKS_AT");
    (void)*txn->CreateRelationship(alice_, bob_, "KNOWS");
    (void)*txn->CreateRelationship(bob_, carol_, "KNOWS");
    (void)*txn->CreateRelationship(carol_, dave_, "KNOWS");
    ASSERT_TRUE(txn->Commit().ok());
  }

  std::unique_ptr<GraphDatabase> db_;
  NodeId alice_, bob_, carol_, dave_, acme_, globex_;
};

TEST_F(QueryTest, MatchByLabel) {
  auto txn = db_->Begin();
  auto rows = Query::Match(NodePattern("Person")).Execute(*txn);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 4u);
  auto companies = Query::Match(NodePattern("Company")).Execute(*txn);
  EXPECT_EQ(companies->size(), 2u);
}

TEST_F(QueryTest, MatchWithFilters) {
  auto txn = db_->Begin();
  auto over30 = Query::Match(NodePattern("Person").Where(
                                 Filter::Gt("age", PropertyValue(int64_t{30}))))
                    .Execute(*txn);
  ASSERT_TRUE(over30.ok());
  EXPECT_EQ(over30->size(), 2u);  // alice (34), carol (41).

  auto exact = Query::Match(NodePattern("Person").Where(
                                Filter::Eq("name", PropertyValue("bob"))))
                   .Execute(*txn);
  ASSERT_TRUE(exact.ok());
  ASSERT_EQ(exact->size(), 1u);
  EXPECT_EQ((*exact)[0][0], bob_);

  auto between =
      Query::Match(NodePattern("Person").Where(Filter::Between(
                       "age", PropertyValue(int64_t{26}),
                       PropertyValue(int64_t{35}))))
          .Execute(*txn);
  EXPECT_EQ(between->size(), 2u);  // alice, bob.

  auto has_age =
      Query::Match(NodePattern("Company").Where(Filter::Exists("age")))
          .Execute(*txn);
  EXPECT_TRUE(has_age->empty());
}

TEST_F(QueryTest, SingleExpansion) {
  auto txn = db_->Begin();
  // MATCH (p:Person)-[:WORKS_AT]->(c:Company {name:"acme"}) RETURN p,c
  auto rows =
      Query::Match(NodePattern("Person"))
          .Expand(Expansion("WORKS_AT", Direction::kOutgoing,
                            NodePattern("Company").Where(
                                Filter::Eq("name", PropertyValue("acme")))))
          .Execute(*txn);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);  // alice and bob.
  for (const QueryRow& row : *rows) {
    ASSERT_EQ(row.size(), 2u);
    EXPECT_EQ(row[1], acme_);
  }
}

TEST_F(QueryTest, MultiHopChain) {
  auto txn = db_->Begin();
  // MATCH (a)-[:KNOWS]->(b)-[:KNOWS]->(c): alice->bob->carol, bob->carol->dave
  auto rows = Query::Match(NodePattern("Person"))
                  .Expand(Expansion("KNOWS", Direction::kOutgoing,
                                    NodePattern("Person")))
                  .Expand(Expansion("KNOWS", Direction::kOutgoing,
                                    NodePattern("Person")))
                  .Execute(*txn);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
}

TEST_F(QueryTest, IncomingDirection) {
  auto txn = db_->Begin();
  // Who is known BY someone? (incoming KNOWS)
  auto rows = Query::Match(NodePattern("Person").Where(
                               Filter::Eq("name", PropertyValue("carol"))))
                  .Expand(Expansion("KNOWS", Direction::kIncoming,
                                    NodePattern("Person")))
                  .Execute(*txn);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][1], bob_);
}

TEST_F(QueryTest, EndpointsDeduplicated) {
  auto txn = db_->Begin();
  // Colleagues of anyone at acme (the company node, from two employees).
  auto endpoints = Query::Match(NodePattern("Person"))
                       .Expand(Expansion("WORKS_AT", Direction::kOutgoing,
                                         NodePattern("Company")))
                       .ExecuteEndpoints(*txn);
  ASSERT_TRUE(endpoints.ok());
  EXPECT_EQ(endpoints->size(), 2u);  // acme, globex (deduped).
}

TEST_F(QueryTest, LimitCapsRows) {
  auto txn = db_->Begin();
  auto rows = Query::Match(NodePattern("Person")).Limit(2).Execute(*txn);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
}

TEST_F(QueryTest, NoRevisitByDefault) {
  auto txn = db_->Begin();
  // alice->bob->alice would revisit; KNOWS is directed alice->bob only, so
  // use kBoth to make the bounce possible.
  auto rows = Query::Match(NodePattern("Person").Where(
                               Filter::Eq("name", PropertyValue("alice"))))
                  .Expand(Expansion("KNOWS", Direction::kBoth,
                                    NodePattern("Person")))
                  .Expand(Expansion("KNOWS", Direction::kBoth,
                                    NodePattern("Person")))
                  .Execute(*txn);
  ASSERT_TRUE(rows.ok());
  // alice-KNOWS-bob-KNOWS-carol only (bounce back to alice suppressed).
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][2], carol_);

  auto with_revisit =
      Query::Match(NodePattern("Person").Where(
                       Filter::Eq("name", PropertyValue("alice"))))
          .Expand(Expansion("KNOWS", Direction::kBoth, NodePattern("Person")))
          .Expand(Expansion("KNOWS", Direction::kBoth, NodePattern("Person")))
          .AllowRevisit(true)
          .Execute(*txn);
  EXPECT_EQ(with_revisit->size(), 2u);  // + alice-bob-alice.
}

TEST_F(QueryTest, QueryInsideSnapshotIsStable) {
  auto reader = db_->Begin(IsolationLevel::kSnapshotIsolation);
  auto query = Query::Match(NodePattern("Person").Where(
                                Filter::Ge("age", PropertyValue(int64_t{30}))))
                   .Expand(Expansion("WORKS_AT", Direction::kOutgoing,
                                     NodePattern("Company")));
  auto before = query.Execute(*reader);
  ASSERT_TRUE(before.ok());
  {
    auto writer = db_->Begin();
    NodeId eve = *writer->CreateNode(
        {"Person"}, {{"name", PropertyValue("eve")},
                     {"age", PropertyValue(int64_t{50})}});
    ASSERT_TRUE(writer->CreateRelationship(eve, acme_, "WORKS_AT").ok());
    ASSERT_TRUE(writer->Commit().ok());
  }
  auto after = query.Execute(*reader);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, *before) << "query result changed inside one snapshot";

  auto fresh = db_->Begin();
  auto latest = query.Execute(*fresh);
  EXPECT_EQ(latest->size(), before->size() + 1);
}

TEST_F(QueryTest, QuerySeesOwnWrites) {
  auto txn = db_->Begin();
  NodeId eve = *txn->CreateNode({"Person"},
                                {{"name", PropertyValue("eve")},
                                 {"age", PropertyValue(int64_t{31})}});
  ASSERT_TRUE(txn->CreateRelationship(eve, globex_, "WORKS_AT").ok());
  auto rows =
      Query::Match(NodePattern("Person").Where(
                       Filter::Eq("name", PropertyValue("eve"))))
          .Expand(Expansion("WORKS_AT", Direction::kOutgoing,
                            NodePattern("Company")))
          .Execute(*txn);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][1], globex_);
}

}  // namespace
}  // namespace neosi
