// GraphStore physical layer: chain surgery, label overflow, tombstones,
// purge unlink, WAL op application.

#include <gtest/gtest.h>

#include "storage/graph_store.h"

namespace neosi {
namespace {

std::unique_ptr<GraphStore> MakeStore() {
  DatabaseOptions options;
  options.in_memory = true;
  auto store = std::make_unique<GraphStore>(options);
  EXPECT_TRUE(store->Open().ok());
  return store;
}

TEST(GraphStore, NewNodeRoundTrip) {
  auto store = MakeStore();
  const NodeId id = *store->AllocateNodeId();
  PropertyMap props{{1, PropertyValue("x")}, {2, PropertyValue(int64_t{5})}};
  ASSERT_TRUE(store->PersistNewNode(id, {3, 4}, props, 100).ok());
  NodeState state;
  ASSERT_TRUE(store->ReadNodeState(id, &state).ok());
  EXPECT_TRUE(state.in_use);
  EXPECT_FALSE(state.deleted);
  EXPECT_EQ(state.labels, (std::vector<LabelId>{3, 4}));
  EXPECT_EQ(state.props, props);
  EXPECT_EQ(state.commit_ts, 100u);
  EXPECT_EQ(state.first_rel, kInvalidRelId);
}

TEST(GraphStore, LabelOverflowBeyondInlineSlots) {
  auto store = MakeStore();
  const NodeId id = *store->AllocateNodeId();
  std::vector<LabelId> many_labels;
  for (LabelId l = 0; l < 20; ++l) many_labels.push_back(l);
  ASSERT_TRUE(store->PersistNewNode(id, many_labels, {}, 1).ok());
  NodeState state;
  ASSERT_TRUE(store->ReadNodeState(id, &state).ok());
  EXPECT_EQ(state.labels, many_labels);
  NodeRecord rec;
  ASSERT_TRUE(store->ReadNodeRecord(id, &rec).ok());
  EXPECT_NE(rec.label_overflow, kInvalidDynId);

  // Rewriting back to few labels frees the overflow blob.
  ASSERT_TRUE(store->PersistNodeState(id, {1}, {}, 2).ok());
  ASSERT_TRUE(store->ReadNodeRecord(id, &rec).ok());
  EXPECT_EQ(rec.label_overflow, kInvalidDynId);
  ASSERT_TRUE(store->ReadNodeState(id, &state).ok());
  EXPECT_EQ(state.labels, (std::vector<LabelId>{1}));
}

TEST(GraphStore, LargeLabelIdForcesOverflow) {
  auto store = MakeStore();
  const NodeId id = *store->AllocateNodeId();
  // A label id that does not fit the u16 inline slot.
  ASSERT_TRUE(store->PersistNewNode(id, {70000}, {}, 1).ok());
  NodeState state;
  ASSERT_TRUE(store->ReadNodeState(id, &state).ok());
  EXPECT_EQ(state.labels, (std::vector<LabelId>{70000}));
}

TEST(GraphStore, RelChainLinksAtHead) {
  auto store = MakeStore();
  const NodeId a = *store->AllocateNodeId();
  const NodeId b = *store->AllocateNodeId();
  ASSERT_TRUE(store->PersistNewNode(a, {}, {}, 1).ok());
  ASSERT_TRUE(store->PersistNewNode(b, {}, {}, 1).ok());

  std::vector<RelId> rels;
  for (int i = 0; i < 3; ++i) {
    const RelId r = *store->AllocateRelId();
    ASSERT_TRUE(store->PersistNewRel(r, a, b, 0, {}, 2 + i).ok());
    rels.push_back(r);
  }
  std::vector<RelId> chain_a, chain_b;
  ASSERT_TRUE(store->RelChainOf(a, &chain_a).ok());
  ASSERT_TRUE(store->RelChainOf(b, &chain_b).ok());
  // Newest first.
  EXPECT_EQ(chain_a, (std::vector<RelId>{rels[2], rels[1], rels[0]}));
  EXPECT_EQ(chain_b, chain_a);
}

TEST(GraphStore, PurgeRelUnlinksMiddleOfChain) {
  auto store = MakeStore();
  const NodeId a = *store->AllocateNodeId();
  const NodeId b = *store->AllocateNodeId();
  ASSERT_TRUE(store->PersistNewNode(a, {}, {}, 1).ok());
  ASSERT_TRUE(store->PersistNewNode(b, {}, {}, 1).ok());
  std::vector<RelId> rels;
  for (int i = 0; i < 3; ++i) {
    const RelId r = *store->AllocateRelId();
    ASSERT_TRUE(store->PersistNewRel(r, a, b, 0, {}, 2).ok());
    rels.push_back(r);
  }
  // Chain: r2 -> r1 -> r0. Purge the middle (r1).
  ASSERT_TRUE(store->PersistRelTombstone(rels[1], 3).ok());
  ASSERT_TRUE(store->PurgeRel(rels[1]).ok());
  std::vector<RelId> chain;
  ASSERT_TRUE(store->RelChainOf(a, &chain).ok());
  EXPECT_EQ(chain, (std::vector<RelId>{rels[2], rels[0]}));
  ASSERT_TRUE(store->RelChainOf(b, &chain).ok());
  EXPECT_EQ(chain, (std::vector<RelId>{rels[2], rels[0]}));
  EXPECT_FALSE(store->RelInUse(rels[1]));
}

TEST(GraphStore, PurgeRelUnlinksHeadAndTail) {
  auto store = MakeStore();
  const NodeId a = *store->AllocateNodeId();
  const NodeId b = *store->AllocateNodeId();
  ASSERT_TRUE(store->PersistNewNode(a, {}, {}, 1).ok());
  ASSERT_TRUE(store->PersistNewNode(b, {}, {}, 1).ok());
  std::vector<RelId> rels;
  for (int i = 0; i < 3; ++i) {
    const RelId r = *store->AllocateRelId();
    ASSERT_TRUE(store->PersistNewRel(r, a, b, 0, {}, 2).ok());
    rels.push_back(r);
  }
  // Purge head (r2).
  ASSERT_TRUE(store->PersistRelTombstone(rels[2], 3).ok());
  ASSERT_TRUE(store->PurgeRel(rels[2]).ok());
  std::vector<RelId> chain;
  ASSERT_TRUE(store->RelChainOf(a, &chain).ok());
  EXPECT_EQ(chain, (std::vector<RelId>{rels[1], rels[0]}));
  // Purge tail (r0).
  ASSERT_TRUE(store->PersistRelTombstone(rels[0], 4).ok());
  ASSERT_TRUE(store->PurgeRel(rels[0]).ok());
  ASSERT_TRUE(store->RelChainOf(a, &chain).ok());
  EXPECT_EQ(chain, (std::vector<RelId>{rels[1]}));
  // Purge last.
  ASSERT_TRUE(store->PersistRelTombstone(rels[1], 5).ok());
  ASSERT_TRUE(store->PurgeRel(rels[1]).ok());
  ASSERT_TRUE(store->RelChainOf(a, &chain).ok());
  EXPECT_TRUE(chain.empty());
  NodeRecord rec;
  ASSERT_TRUE(store->ReadNodeRecord(a, &rec).ok());
  EXPECT_EQ(rec.first_rel, kInvalidRelId);
}

TEST(GraphStore, SelfLoopLinksOnce) {
  auto store = MakeStore();
  const NodeId a = *store->AllocateNodeId();
  ASSERT_TRUE(store->PersistNewNode(a, {}, {}, 1).ok());
  const RelId r = *store->AllocateRelId();
  ASSERT_TRUE(store->PersistNewRel(r, a, a, 0, {}, 2).ok());
  std::vector<RelId> chain;
  ASSERT_TRUE(store->RelChainOf(a, &chain).ok());
  EXPECT_EQ(chain, (std::vector<RelId>{r}));
  ASSERT_TRUE(store->PersistRelTombstone(r, 3).ok());
  ASSERT_TRUE(store->PurgeRel(r).ok());
  ASSERT_TRUE(store->RelChainOf(a, &chain).ok());
  EXPECT_TRUE(chain.empty());
}

TEST(GraphStore, NodeTombstoneClearsState) {
  auto store = MakeStore();
  const NodeId id = *store->AllocateNodeId();
  ASSERT_TRUE(
      store->PersistNewNode(id, {1}, {{2, PropertyValue("x")}}, 1).ok());
  ASSERT_TRUE(store->PersistNodeTombstone(id, 5).ok());
  NodeState state;
  ASSERT_TRUE(store->ReadNodeState(id, &state).ok());
  EXPECT_TRUE(state.in_use);
  EXPECT_TRUE(state.deleted);
  EXPECT_TRUE(state.labels.empty());
  EXPECT_TRUE(state.props.empty());
  EXPECT_EQ(state.commit_ts, 5u);
  // Purge frees the record.
  ASSERT_TRUE(store->PurgeNode(id).ok());
  EXPECT_FALSE(store->NodeInUse(id));
}

TEST(GraphStore, PurgeNodeWithLiveChainIsInternalError) {
  auto store = MakeStore();
  const NodeId a = *store->AllocateNodeId();
  const NodeId b = *store->AllocateNodeId();
  ASSERT_TRUE(store->PersistNewNode(a, {}, {}, 1).ok());
  ASSERT_TRUE(store->PersistNewNode(b, {}, {}, 1).ok());
  const RelId r = *store->AllocateRelId();
  ASSERT_TRUE(store->PersistNewRel(r, a, b, 0, {}, 2).ok());
  EXPECT_TRUE(store->PurgeNode(a).IsInternal());
}

TEST(GraphStore, ApplyWalOpsRebuildState) {
  auto store = MakeStore();
  // Simulate recovery applying a stream of logical ops.
  ASSERT_TRUE(store
                  ->ApplyWalOp(WalOp::CreateNode(0, {1},
                                                 {{2, PropertyValue("a")}}),
                               10)
                  .ok());
  ASSERT_TRUE(store->ApplyWalOp(WalOp::CreateNode(1, {}, {}), 10).ok());
  ASSERT_TRUE(
      store->ApplyWalOp(WalOp::SetNodeProperty(0, 3, PropertyValue(5)), 11)
          .ok());
  ASSERT_TRUE(store->ApplyWalOp(WalOp::CreateRel(0, 0, 1, 0, {}), 12).ok());
  NodeState state;
  ASSERT_TRUE(store->ReadNodeState(0, &state).ok());
  EXPECT_EQ(state.props.at(3), PropertyValue(5));
  EXPECT_EQ(state.commit_ts, 11u);
  std::vector<RelId> chain;
  ASSERT_TRUE(store->RelChainOf(0, &chain).ok());
  EXPECT_EQ(chain.size(), 1u);

  // Idempotent replay: re-applying the same ops changes nothing.
  ASSERT_TRUE(store
                  ->ApplyWalOp(WalOp::CreateNode(0, {1},
                                                 {{2, PropertyValue("a")}}),
                               10)
                  .ok());
  ASSERT_TRUE(store->ApplyWalOp(WalOp::CreateRel(0, 0, 1, 0, {}), 12).ok());
  ASSERT_TRUE(store->RelChainOf(0, &chain).ok());
  EXPECT_EQ(chain.size(), 1u);  // Not double-linked.
}

TEST(GraphStore, EnsureRelLinkedRepairsBrokenLink) {
  auto store = MakeStore();
  const NodeId a = *store->AllocateNodeId();
  const NodeId b = *store->AllocateNodeId();
  ASSERT_TRUE(store->PersistNewNode(a, {}, {}, 1).ok());
  ASSERT_TRUE(store->PersistNewNode(b, {}, {}, 1).ok());
  const RelId r = *store->AllocateRelId();
  ASSERT_TRUE(store->PersistNewRel(r, a, b, 0, {}, 2).ok());

  // Simulate a crash that left the record written but a's chain unlinked:
  // reset a.first_rel to invalid.
  NodeRecord rec;
  ASSERT_TRUE(store->ReadNodeRecord(a, &rec).ok());
  rec.first_rel = kInvalidRelId;
  // (Write through the private path via ApplyWalOp is not available; use
  // the public repair API after hand-breaking the chain.)
  // Simplest: purge-style surgery is not exposed, so break via a fresh
  // EnsureRelLinked after re-creating conditions is covered by the recovery
  // tests; here just verify EnsureRelLinked is a no-op for intact links.
  ASSERT_TRUE(store->EnsureRelLinked(r).ok());
  std::vector<RelId> chain;
  ASSERT_TRUE(store->RelChainOf(a, &chain).ok());
  EXPECT_EQ(chain, (std::vector<RelId>{r}));
}

TEST(GraphStore, StatsReflectUsage) {
  auto store = MakeStore();
  const NodeId id = *store->AllocateNodeId();
  ASSERT_TRUE(store
                  ->PersistNewNode(id, {},
                                   {{1, PropertyValue(std::string(200, 'x'))}},
                                   1)
                  .ok());
  GraphStoreStats stats = store->Stats();
  EXPECT_EQ(stats.nodes.high_id, 1u);
  EXPECT_GE(stats.props.high_id, 1u);
  EXPECT_GE(stats.strings.high_id, 1u);  // Long value spilled.
}

}  // namespace
}  // namespace neosi
