// ObjectCache: load-on-miss materialization, pinning of multi-version
// entities, eviction, stats.

#include <gtest/gtest.h>

#include "cache/object_cache.h"

namespace neosi {
namespace {

std::unique_ptr<GraphStore> MakeStore() {
  DatabaseOptions options;
  options.in_memory = true;
  auto store = std::make_unique<GraphStore>(options);
  EXPECT_TRUE(store->Open().ok());
  return store;
}

TEST(ObjectCache, LoadsNewestCommittedVersionOnMiss) {
  auto store = MakeStore();
  ObjectCache cache(store.get(), 0);
  const NodeId id = *store->AllocateNodeId();
  ASSERT_TRUE(
      store->PersistNewNode(id, {1}, {{2, PropertyValue("v")}}, 77).ok());

  auto node = cache.GetNode(id);
  ASSERT_TRUE(node.ok());
  EXPECT_EQ((*node)->chain.Length(), 1u);
  auto version = (*node)->chain.LatestCommitted();
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(version->commit_ts, 77u);
  EXPECT_EQ(version->data.labels, (std::vector<LabelId>{1}));
  EXPECT_EQ(version->data.props.at(2), PropertyValue("v"));

  ObjectCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.node_misses, 1u);
  EXPECT_EQ(stats.loads, 1u);
  // Second access is a hit.
  ASSERT_TRUE(cache.GetNode(id).ok());
  EXPECT_EQ(cache.Stats().node_hits, 1u);
}

TEST(ObjectCache, MissOnFreeRecordIsNotFound) {
  auto store = MakeStore();
  ObjectCache cache(store.get(), 0);
  EXPECT_TRUE(cache.GetNode(42).status().IsNotFound());
  const NodeId id = *store->AllocateNodeId();  // Allocated but zeroed.
  EXPECT_TRUE(cache.GetNode(id).status().IsNotFound());
}

TEST(ObjectCache, LoadsTombstoneAsDeletedVersion) {
  auto store = MakeStore();
  ObjectCache cache(store.get(), 0);
  const NodeId id = *store->AllocateNodeId();
  ASSERT_TRUE(store->PersistNewNode(id, {}, {}, 5).ok());
  ASSERT_TRUE(store->PersistNodeTombstone(id, 9).ok());
  auto node = cache.GetNode(id);
  ASSERT_TRUE(node.ok());
  auto version = (*node)->chain.LatestCommitted();
  EXPECT_TRUE(version->data.deleted);
  EXPECT_EQ(version->commit_ts, 9u);
}

TEST(ObjectCache, RelTopologyOnCachedObject) {
  auto store = MakeStore();
  ObjectCache cache(store.get(), 0);
  const NodeId a = *store->AllocateNodeId();
  const NodeId b = *store->AllocateNodeId();
  ASSERT_TRUE(store->PersistNewNode(a, {}, {}, 1).ok());
  ASSERT_TRUE(store->PersistNewNode(b, {}, {}, 1).ok());
  const RelId r = *store->AllocateRelId();
  ASSERT_TRUE(
      store->PersistNewRel(r, a, b, 3, {{1, PropertyValue(2.5)}}, 2).ok());
  auto rel = cache.GetRel(r);
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ((*rel)->src, a);
  EXPECT_EQ((*rel)->dst, b);
  EXPECT_EQ((*rel)->type, 3u);
  EXPECT_EQ((*rel)->chain.LatestCommitted()->data.props.at(1),
            PropertyValue(2.5));
}

TEST(ObjectCache, InsertNewAndErase) {
  auto store = MakeStore();
  ObjectCache cache(store.get(), 0);
  auto node = cache.InsertNewNode(10);
  ASSERT_TRUE(node.ok());
  EXPECT_NE(cache.PeekNode(10), nullptr);
  // Double insert of a live entry is an engine bug...
  ASSERT_TRUE(
      (*node)->chain.InstallUncommitted(1, VersionData{}).ok());
  ASSERT_TRUE((*node)->chain.CommitHead(1, 5).ok());
  EXPECT_TRUE(cache.InsertNewNode(10).status().IsInternal());
  // ...but a defunct (tombstone) entry is silently replaced (purge race).
  auto rel = cache.InsertNewRel(3, 1, 2, 0);
  ASSERT_TRUE(rel.ok());
  VersionData dead;
  dead.deleted = true;
  ASSERT_TRUE((*rel)->chain.InstallUncommitted(1, dead).ok());
  ASSERT_TRUE((*rel)->chain.CommitHead(1, 6).ok());
  EXPECT_TRUE(cache.InsertNewRel(3, 5, 6, 1).ok());
  EXPECT_EQ(cache.PeekRel(3)->src, 5u);

  cache.EraseNode(10);
  EXPECT_EQ(cache.PeekNode(10), nullptr);
}

TEST(ObjectCache, EvictionKeepsMultiVersionEntitiesPinned) {
  auto store = MakeStore();
  ObjectCache cache(store.get(), /*capacity=*/4);
  // 10 single-version nodes (evictable) + 1 multi-version node (pinned).
  for (int i = 0; i < 10; ++i) {
    const NodeId id = *store->AllocateNodeId();
    ASSERT_TRUE(store->PersistNewNode(id, {}, {}, 1).ok());
    ASSERT_TRUE(cache.GetNode(id).ok());
  }
  const NodeId pinned = *store->AllocateNodeId();
  ASSERT_TRUE(store->PersistNewNode(pinned, {}, {}, 1).ok());
  auto node = cache.GetNode(pinned);
  ASSERT_TRUE(node.ok());
  ASSERT_TRUE((*node)->chain.InstallUncommitted(9, VersionData{}).ok());
  ASSERT_TRUE((*node)->chain.CommitHead(9, 2).ok());  // Two versions now.

  const size_t evicted = cache.EvictIfNeeded();
  EXPECT_GT(evicted, 0u);
  EXPECT_NE(cache.PeekNode(pinned), nullptr) << "multi-version pinned";

  // Uncommitted writers also pin.
  const NodeId writing = *store->AllocateNodeId();
  ASSERT_TRUE(store->PersistNewNode(writing, {}, {}, 3).ok());
  auto wnode = cache.GetNode(writing);
  ASSERT_TRUE(wnode.ok());
  ASSERT_TRUE((*wnode)->chain.InstallUncommitted(5, VersionData{}).ok());
  cache.EvictIfNeeded();
  EXPECT_NE(cache.PeekNode(writing), nullptr);
}

TEST(ObjectCache, EvictedEntryReloadsFromStore) {
  auto store = MakeStore();
  ObjectCache cache(store.get(), /*capacity=*/1);
  std::vector<NodeId> ids;
  for (int i = 0; i < 5; ++i) {
    const NodeId id = *store->AllocateNodeId();
    ASSERT_TRUE(store->PersistNewNode(
                        id, {}, {{1, PropertyValue(int64_t{i})}}, i + 1)
                    .ok());
    ids.push_back(id);
    ASSERT_TRUE(cache.GetNode(id).ok());
  }
  cache.EvictIfNeeded();
  for (int i = 0; i < 5; ++i) {
    auto node = cache.GetNode(ids[i]);
    ASSERT_TRUE(node.ok());
    EXPECT_EQ(node->get()->chain.LatestCommitted()->data.props.at(1),
              PropertyValue(int64_t{i}));
  }
}

TEST(ObjectCache, StatsCountResidentVersions) {
  auto store = MakeStore();
  ObjectCache cache(store.get(), 0);
  const NodeId id = *store->AllocateNodeId();
  ASSERT_TRUE(store->PersistNewNode(id, {}, {}, 1).ok());
  auto node = cache.GetNode(id);
  ASSERT_TRUE(node.ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE((*node)->chain.InstallUncommitted(50 + i, VersionData{}).ok());
    ASSERT_TRUE((*node)->chain.CommitHead(50 + i, 10 + i).ok());
  }
  ObjectCacheStats stats = cache.Stats();
  EXPECT_EQ(stats.resident_nodes, 1u);
  EXPECT_EQ(stats.resident_versions, 4u);
  EXPECT_GT(stats.approx_bytes, 0u);
}

}  // namespace
}  // namespace neosi
