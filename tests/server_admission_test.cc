// Deterministic admission-control tests. All pressure is constructed by
// hand: the GC daemon is OFF, so the backlog gauge moves only when this
// test churns versions, and drains only when this test calls RunGc() — no
// timing dependence. The contract under test, per cause:
//
//   * Backlog over snapshot_expire_backlog  => NEW wire Begins shed with
//     retryable Busy (admission_shed_backlog), or admitted after a bounded
//     delay if the backlog drains meanwhile (admission_delayed).
//   * max_sessions open wire transactions   => NEW Begins shed immediately
//     (admission_shed_sessions).
//   * Established sessions are NEVER aborted by admission: while the door
//     is shut, a session that got in earlier keeps reading and commits,
//     and snapshots_expired_* stay untouched.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "graph/graph_database.h"
#include "server/client.h"
#include "server/server.h"

namespace neosi {
namespace {

constexpr uint64_t kBacklogThreshold = 16;

std::unique_ptr<GraphDatabase> OpenPressureDb() {
  DatabaseOptions options;  // In-memory.
  options.background_gc_interval_ms = 0;  // All drains are explicit RunGc().
  options.checkpoint_interval_ms = 0;
  options.snapshot_expire_backlog = kBacklogThreshold;
  auto db = GraphDatabase::Open(options);
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(*db);
}

/// Commits one node with v=0 — the churn target.
NodeId SeedChurnNode(GraphDatabase& db) {
  auto txn = db.Begin();
  NodeId key = *txn->CreateNode({"Churn"}, {{"v", PropertyValue(int64_t{0})}});
  EXPECT_TRUE(txn->Commit().ok());
  return key;
}

/// Churns the node's property via the embedded API until the GC backlog
/// gauge exceeds the admission threshold.
void ChurnPastThreshold(GraphDatabase& db, NodeId key) {
  for (int64_t i = 0; i < 4 * static_cast<int64_t>(kBacklogThreshold) &&
                      db.engine().gc_list.backlog() <= kBacklogThreshold + 4;
       ++i) {
    auto txn = db.Begin();
    EXPECT_TRUE(txn->SetNodeProperty(key, "v", PropertyValue(i)).ok());
    EXPECT_TRUE(txn->Commit().ok());
  }
  EXPECT_GT(db.engine().gc_list.backlog(), kBacklogThreshold);
}

TEST(ServerAdmission, BacklogShedsOnlyNewBeginsAndReopensAfterDrain) {
  auto db = OpenPressureDb();
  ServerOptions server_options;
  server_options.workers = 2;
  server_options.admission_delay_ms = 1;  // Shed fast: nothing will drain.
  auto server = std::move(*Server::Start(db.get(), server_options));
  const NodeId key = SeedChurnNode(*db);

  // An ESTABLISHED session begins before any pressure exists (but after
  // the churn target: its snapshot must see v=0 and none of the churn).
  Client established;
  ASSERT_TRUE(established.Connect("127.0.0.1", server->port()).ok());
  ASSERT_TRUE(established.Begin().ok());

  ChurnPastThreshold(*db, key);

  // Door shut: every NEW Begin is shed with retryable Busy.
  Client newcomer;
  ASSERT_TRUE(newcomer.Connect("127.0.0.1", server->port()).ok());
  for (int i = 0; i < 3; ++i) {
    auto begin = newcomer.Begin();
    ASSERT_FALSE(begin.ok());
    EXPECT_TRUE(begin.status().IsBusy()) << begin.status();
    EXPECT_TRUE(begin.status().IsRetryable());
  }
  DatabaseStats stats = db->Stats();
  EXPECT_GE(stats.admission_shed_backlog, 3u);
  EXPECT_EQ(stats.admission_shed_sessions, 0u);

  // The established session sailed through the whole episode: its snapshot
  // was never admission-aborted, it still reads, and it commits.
  auto value = established.GetNodeProperty(key, "v");
  EXPECT_TRUE(value.ok()) << value.status();
  EXPECT_EQ(value->AsInt(), 0) << "snapshot must predate the churn";
  auto committed = established.Commit();
  EXPECT_TRUE(committed.ok()) << committed.status();
  stats = db->Stats();
  EXPECT_EQ(stats.snapshots_expired_backlog, 0u);
  EXPECT_EQ(stats.snapshots_expired_age, 0u);
  EXPECT_EQ(stats.snapshot_too_old_aborts, 0u);

  // Drain (the established commit released the watermark pin) — the door
  // must reopen.
  db->RunGc();
  ASSERT_LE(db->engine().gc_list.backlog(), kBacklogThreshold);
  auto reopened = newcomer.Begin();
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_TRUE(newcomer.Commit().ok() || newcomer.Rollback().ok());
  EXPECT_GT(db->Stats().admission_admitted, 0u);
  server->Stop();
}

// The delay path: a Begin arriving under backlog pressure that DRAINS
// within admission_delay_ms is admitted (counted admission_delayed), not
// shed — the door opens for the waiter.
TEST(ServerAdmission, BeginDelayedThroughDrainIsAdmittedNotShed) {
  auto db = OpenPressureDb();
  ServerOptions server_options;
  server_options.workers = 2;
  server_options.admission_delay_ms = 2000;  // Plenty of patience.
  auto server = std::move(*Server::Start(db.get(), server_options));

  ChurnPastThreshold(*db, SeedChurnNode(*db));

  // Drain the backlog once the Begin is PROVABLY parked in the admission
  // window (the live waiting gauge makes this race-free).
  std::thread drainer([&db] {
    while (db->engine().admission.waiting.load() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    db->RunGc();
  });

  Client waiter;
  ASSERT_TRUE(waiter.Connect("127.0.0.1", server->port()).ok());
  auto begin = waiter.Begin();
  drainer.join();

  ASSERT_TRUE(begin.ok()) << begin.status();
  const DatabaseStats stats = db->Stats();
  EXPECT_GE(stats.admission_delayed, 1u);
  EXPECT_EQ(stats.admission_shed_backlog, 0u);
  EXPECT_TRUE(waiter.Rollback().ok());
  server->Stop();
}

TEST(ServerAdmission, MaxSessionsShedsNewBeginsUntilASlotFrees) {
  DatabaseOptions db_options;
  db_options.background_gc_interval_ms = 0;
  auto db = std::move(*GraphDatabase::Open(db_options));
  ServerOptions server_options;
  server_options.workers = 2;
  server_options.max_sessions = 2;
  auto server = std::move(*Server::Start(db.get(), server_options));

  Client first, second, third;
  ASSERT_TRUE(first.Connect("127.0.0.1", server->port()).ok());
  ASSERT_TRUE(second.Connect("127.0.0.1", server->port()).ok());
  ASSERT_TRUE(third.Connect("127.0.0.1", server->port()).ok());

  ASSERT_TRUE(first.Begin().ok());
  ASSERT_TRUE(second.Begin().ok());

  // Both slots held: the third session's Begin is shed...
  auto shed = third.Begin();
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsBusy()) << shed.status();
  EXPECT_GE(db->Stats().admission_shed_sessions, 1u);

  // ...while the slot HOLDERS are untouched: both commit fine.
  ASSERT_TRUE(first.CreateNode({"Holder"}).ok());
  EXPECT_TRUE(first.Commit().ok());
  EXPECT_TRUE(second.Rollback().ok());

  // Slots freed: the shed client's retry gets in.
  auto retry = third.Begin();
  ASSERT_TRUE(retry.ok()) << retry.status();
  EXPECT_TRUE(third.Rollback().ok());
  server->Stop();
}

}  // namespace
}  // namespace neosi
