// Cursor-style iterator API.

#include <gtest/gtest.h>

#include "graph/graph_database.h"
#include "graph/iterators.h"

namespace neosi {
namespace {

class IteratorsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.in_memory = true;
    db_ = std::move(*GraphDatabase::Open(options));
    auto txn = db_->Begin();
    for (int i = 0; i < 10; ++i) {
      people_.push_back(*txn->CreateNode(
          {"Person"}, {{"age", PropertyValue(static_cast<int64_t>(20 + i))}}));
    }
    hub_ = *txn->CreateNode({"Hub"});
    for (int i = 0; i < 5; ++i) {
      rels_.push_back(*txn->CreateRelationship(
          hub_, people_[i], "OWNS",
          {{"w", PropertyValue(static_cast<int64_t>(i))}}));
    }
    ASSERT_TRUE(txn->Commit().ok());
  }

  std::unique_ptr<GraphDatabase> db_;
  std::vector<NodeId> people_;
  std::vector<RelId> rels_;
  NodeId hub_ = kInvalidNodeId;
};

TEST_F(IteratorsTest, AllNodesIteration) {
  auto txn = db_->Begin();
  auto it = NodeIterator::All(*txn);
  EXPECT_TRUE(it.status().ok());
  size_t count = 0;
  NodeId prev = 0;
  for (; it.Valid(); it.Next()) {
    if (count > 0) {
      EXPECT_GT(it.id(), prev);
    }
    prev = it.id();
    ++count;
  }
  EXPECT_EQ(count, 11u);
  EXPECT_EQ(it.size(), 11u);
}

TEST_F(IteratorsTest, ByLabelWithViews) {
  auto txn = db_->Begin();
  auto it = NodeIterator::ByLabel(*txn, "Person");
  size_t count = 0;
  for (; it.Valid(); it.Next()) {
    auto view = it.Get();
    ASSERT_TRUE(view.ok());
    EXPECT_EQ(view->labels, (std::vector<std::string>{"Person"}));
    EXPECT_GE(view->props.at("age").AsInt(), 20);
    ++count;
  }
  EXPECT_EQ(count, 10u);
}

TEST_F(IteratorsTest, ByPropertyAndRange) {
  auto txn = db_->Begin();
  auto exact =
      NodeIterator::ByProperty(*txn, "age", PropertyValue(int64_t{25}));
  EXPECT_EQ(exact.size(), 1u);
  auto range = NodeIterator::ByPropertyRange(
      *txn, "age", PropertyValue(int64_t{22}), PropertyValue(int64_t{26}));
  EXPECT_EQ(range.size(), 5u);
  auto none =
      NodeIterator::ByProperty(*txn, "nope", PropertyValue(int64_t{0}));
  EXPECT_TRUE(none.status().ok());
  EXPECT_FALSE(none.Valid());
}

TEST_F(IteratorsTest, RelationshipsOfNode) {
  auto txn = db_->Begin();
  auto it = RelationshipIterator::Of(*txn, hub_, Direction::kOutgoing);
  size_t count = 0;
  for (; it.Valid(); it.Next()) {
    auto view = it.Get();
    ASSERT_TRUE(view.ok());
    EXPECT_EQ(view->src, hub_);
    EXPECT_EQ(view->type, "OWNS");
    ++count;
  }
  EXPECT_EQ(count, 5u);
  auto typed = RelationshipIterator::Of(*txn, hub_, Direction::kBoth,
                                        std::string("MISSING"));
  EXPECT_FALSE(typed.Valid());
}

TEST_F(IteratorsTest, RelationshipsByProperty) {
  auto txn = db_->Begin();
  auto it =
      RelationshipIterator::ByProperty(*txn, "w", PropertyValue(int64_t{3}));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.id(), rels_[3]);
  it.Next();
  EXPECT_FALSE(it.Valid());
}

TEST_F(IteratorsTest, IteratorHonoursSnapshot) {
  auto reader = db_->Begin(IsolationLevel::kSnapshotIsolation);
  // Pin the snapshot, then commit a new Person.
  EXPECT_EQ(NodeIterator::ByLabel(*reader, "Person").size(), 10u);
  {
    auto writer = db_->Begin();
    ASSERT_TRUE(writer->CreateNode({"Person"}).ok());
    ASSERT_TRUE(writer->Commit().ok());
  }
  EXPECT_EQ(NodeIterator::ByLabel(*reader, "Person").size(), 10u);
  auto fresh = db_->Begin();
  EXPECT_EQ(NodeIterator::ByLabel(*fresh, "Person").size(), 11u);
}

TEST_F(IteratorsTest, IteratorSeesOwnWrites) {
  auto txn = db_->Begin();
  ASSERT_TRUE(txn->CreateNode({"Person"}).ok());
  EXPECT_EQ(NodeIterator::ByLabel(*txn, "Person").size(), 11u);
}

TEST_F(IteratorsTest, InvalidAfterExhaustion) {
  auto txn = db_->Begin();
  auto it = NodeIterator::ByLabel(*txn, "Hub");
  ASSERT_TRUE(it.Valid());
  it.Next();
  EXPECT_FALSE(it.Valid());
}

}  // namespace
}  // namespace neosi
