#!/usr/bin/env bash
# Docs lint: extract every fenced ```sh docs-lint block from the operator
# docs and execute it from the repository root. Documentation that tells an
# operator to run something must actually run — CI fails when a documented
# command stops working.
#
#   $ scripts/docs_lint.sh [file...]       # default: README.md docs/OPERATIONS.md
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

files=("$@")
if [ ${#files[@]} -eq 0 ]; then
  files=(README.md docs/OPERATIONS.md)
fi

total=0
for file in "${files[@]}"; do
  if [ ! -f "$file" ]; then
    echo "docs_lint: missing $file" >&2
    exit 1
  fi
  # Pull out the docs-lint blocks, in order, into one script per file.
  script="$(awk '
    /^```sh docs-lint[[:space:]]*$/ { in_block = 1; next }
    /^```[[:space:]]*$/             { in_block = 0; next }
    in_block                        { print }
  ' "$file")"
  if [ -z "$script" ]; then
    echo "docs_lint: $file has no \`\`\`sh docs-lint blocks" >&2
    continue
  fi
  blocks=$(grep -c '^```sh docs-lint[[:space:]]*$' "$file")
  total=$((total + blocks))
  echo "=== docs_lint: $file ($blocks block(s)) ==="
  printf '%s\n' "$script" | sed 's/^/    /'
  bash -euo pipefail -c "$script"
  echo "=== docs_lint: $file OK ==="
done

if [ "$total" -eq 0 ]; then
  echo "docs_lint: no runnable blocks found anywhere" >&2
  exit 1
fi
echo "docs_lint: $total block(s) ran green"
