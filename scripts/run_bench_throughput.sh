#!/usr/bin/env bash
# Runs bench_throughput and records its cells as BENCH_throughput.json at the
# repo root (the perf trajectory file; CI archives it per commit).
#
# Usage: scripts/run_bench_throughput.sh [build_dir] [scale]
#   build_dir  cmake build directory (default: build)
#   scale      NEOSI_BENCH_SCALE workload multiplier (default: 1.0)

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
scale="${2:-1.0}"

bench="$build_dir/bench_throughput"
if [[ ! -x "$bench" ]]; then
  echo "error: $bench not built (run: cmake -B build -S . && cmake --build build -j)" >&2
  exit 1
fi

NEOSI_BENCH_SCALE="$scale" NEOSI_BENCH_JSON="$repo_root/BENCH_throughput.json" \
  "$bench"

echo "----"
echo "BENCH_throughput.json:"
cat "$repo_root/BENCH_throughput.json"
