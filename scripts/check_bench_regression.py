#!/usr/bin/env python3
"""Compare a fresh BENCH_throughput.json against a committed baseline.

Flags any (section, config, threads) cell whose txn_per_sec dropped by more
than --threshold (default 30%) versus the baseline, and prints a per-section
worst-drop summary.

Advisory by default: the CI runner is a noisy single-core box (see the
ROADMAP multi-core caveat), so drops are reported as warnings and the exit
code stays 0 unless --hard-fail is given. Cells present in only one file
are reported but never fail the check (sections come and go across PRs).

Usage:
  scripts/check_bench_regression.py BASELINE FRESH [--threshold 0.30]
                                    [--hard-fail]
"""

import argparse
import json
import sys

# Sections that stay advisory even under --hard-fail. E18's flusher-vs-
# inline contrast (commit_io_flush) only exists with real core parallelism:
# on the single-core runner the flusher thread timeshares with the writers,
# so its ack-latency cells swing far past the threshold from scheduler
# noise alone.
ADVISORY_SECTIONS = {"commit_io_flush"}


def load_cells(path):
    with open(path) as f:
        data = json.load(f)
    cells = {}
    for cell in data.get("cells", []):
        key = (cell["section"], cell["config"], cell["threads"])
        cells[key] = cell
    return cells


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="fractional throughput drop that counts as a "
                             "regression (default 0.30)")
    parser.add_argument("--hard-fail", action="store_true",
                        help="exit non-zero on regressions (multi-core "
                             "runners only; the single-core runner warns)")
    args = parser.parse_args()

    try:
        baseline = load_cells(args.baseline)
    except (OSError, ValueError) as e:
        print(f"bench-regression: cannot read baseline ({e}); skipping")
        return 0
    try:
        fresh = load_cells(args.fresh)
    except (OSError, ValueError) as e:
        print(f"bench-regression: cannot read fresh results ({e}); skipping")
        return 0

    regressions = []
    worst_by_section = {}
    for key, base_cell in sorted(baseline.items()):
        fresh_cell = fresh.get(key)
        if fresh_cell is None:
            print(f"  note: cell {key} missing from fresh run")
            continue
        base_tps = base_cell.get("txn_per_sec", 0.0)
        fresh_tps = fresh_cell.get("txn_per_sec", 0.0)
        if base_tps <= 0:
            continue
        drop = (base_tps - fresh_tps) / base_tps
        section = key[0]
        prev = worst_by_section.get(section)
        if prev is None or drop > prev[0]:
            worst_by_section[section] = (drop, key)
        if drop > args.threshold:
            if section in ADVISORY_SECTIONS:
                print(f"  note: advisory section cell {key} dropped "
                      f"{drop * 100:.1f}% (never fails the check)")
            else:
                regressions.append((key, base_tps, fresh_tps, drop))
    for key in sorted(fresh.keys() - baseline.keys()):
        print(f"  note: new cell {key} has no baseline yet")

    print("\nworst drop per section (negative = improvement):")
    for section, (drop, key) in sorted(worst_by_section.items()):
        print(f"  {section:20s} {drop * 100:+7.1f}%  at {key}")

    if not regressions:
        print(f"\nbench-regression: OK — no cell dropped more than "
              f"{args.threshold * 100:.0f}%")
        return 0

    print(f"\nbench-regression: {len(regressions)} cell(s) dropped more "
          f"than {args.threshold * 100:.0f}%:")
    for key, base_tps, fresh_tps, drop in regressions:
        print(f"  {key}: {base_tps:.0f} -> {fresh_tps:.0f} txn/s "
              f"({drop * 100:.1f}% drop)")
    if args.hard_fail:
        return 1
    print("advisory mode (single-core runner): not failing the job; "
          "re-measure on a multi-core box before reverting anything")
    return 0


if __name__ == "__main__":
    sys.exit(main())
