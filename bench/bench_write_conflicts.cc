// Experiment E4 — the write rule: first-updater-wins vs first-committer-wins
// (paper §3/§4).
//
// Update-only transactions touch K hot nodes with Zipf-skewed access. The
// three conflict policies are compared on abort rate, throughput, and where
// the abort happens (early at write time vs late at commit — the wasted
// work the policy choice trades off).

#include "bench/bench_common.h"
#include "common/random.h"
#include "workload/driver.h"
#include "workload/zipf.h"

namespace neosi {
namespace bench {
namespace {

struct Cell {
  DriverResult result;
  double avg_writes_per_abort = 0;  // Work performed before aborting.
};

Cell RunCell(ConflictPolicy policy, double theta, int threads,
             uint64_t ops_per_thread, uint64_t hot_nodes) {
  auto db = OpenDb(policy, /*gc_interval_ms=*/10,
                   /*gc_backlog_threshold=*/256);
  std::vector<NodeId> nodes;
  {
    auto txn = db->Begin();
    for (uint64_t i = 0; i < hot_nodes; ++i) {
      nodes.push_back(
          *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}}));
    }
    txn->Commit();
  }
  std::atomic<uint64_t> aborted_writes{0};
  std::atomic<uint64_t> aborts{0};

  Cell cell;
  cell.result = RunForOps(threads, ops_per_thread, [&](int t, uint64_t op) {
    ZipfSampler zipf(hot_nodes, theta, t * 7919 + op);
    Random rng(t * 31 + op);
    auto txn = db->Begin(IsolationLevel::kSnapshotIsolation);
    uint64_t writes_done = 0;
    // Each transaction updates 4 hot nodes.
    for (int i = 0; i < 4; ++i) {
      const NodeId id = nodes[zipf.Next()];
      Status s = txn->SetNodeProperty(
          id, "v", PropertyValue(static_cast<int64_t>(rng.Next() >> 1)));
      if (!s.ok()) {
        if (s.IsRetryable()) {
          aborts.fetch_add(1);
          aborted_writes.fetch_add(writes_done);
        }
        return s;
      }
      ++writes_done;
    }
    Status s = txn->Commit();
    if (s.IsRetryable()) {
      aborts.fetch_add(1);
      aborted_writes.fetch_add(writes_done);
    }
    return s;
  });
  cell.avg_writes_per_abort =
      aborts.load() ? static_cast<double>(aborted_writes.load()) /
                          static_cast<double>(aborts.load())
                    : 0.0;
  return cell;
}

}  // namespace
}  // namespace bench
}  // namespace neosi

int main() {
  using namespace neosi;
  using namespace neosi::bench;

  Banner("E4: write-write conflict policies",
         "no two concurrent transactions update the same item; "
         "first-updater-wins aborts early (little wasted work), "
         "first-committer-wins aborts late (whole transaction wasted)");

  const uint64_t ops = Scaled(300);
  const uint64_t hot_nodes = 64;
  const int threads = 4;

  std::printf("%-26s %6s %10s %12s %10s %18s\n", "policy", "theta",
              "commits", "abort-rate", "txn/s", "writes-per-abort");
  for (ConflictPolicy policy : {ConflictPolicy::kFirstUpdaterWinsNoWait,
                                ConflictPolicy::kFirstUpdaterWinsWait,
                                ConflictPolicy::kFirstCommitterWins}) {
    for (double theta : {0.0, 0.6, 0.99}) {
      const auto cell = RunCell(policy, theta, threads, ops, hot_nodes);
      std::printf("%-26s %6.2f %10llu %11.2f%% %10.0f %18.2f\n",
                  std::string(ConflictPolicyToString(policy)).c_str(), theta,
                  static_cast<unsigned long long>(cell.result.committed),
                  100.0 * cell.result.AbortRate(), cell.result.Throughput(),
                  cell.avg_writes_per_abort);
    }
  }
  std::printf(
      "\nexpected shape: abort rate grows with theta (contention) for every "
      "policy; writes-per-abort is highest for FirstCommitterWins (aborts "
      "carry a full transaction of work) and lowest for the no-wait "
      "first-updater policy.\n");
  return 0;
}
