// Micro benchmarks: transaction begin/commit and lock manager hot paths.

#include <benchmark/benchmark.h>

#include "graph/graph_database.h"
#include "txn/lock_manager.h"

namespace neosi {
namespace {

std::unique_ptr<GraphDatabase> OpenDb() {
  DatabaseOptions options;
  options.in_memory = true;
  options.background_gc_interval_ms = 10;
  return std::move(*GraphDatabase::Open(options));
}

void BM_BeginCommitReadOnly(benchmark::State& state) {
  auto db = OpenDb();
  for (auto _ : state) {
    auto txn = db->Begin();
    benchmark::DoNotOptimize(txn->Commit());
  }
}
BENCHMARK(BM_BeginCommitReadOnly);

void BM_SingleWriteCommit(benchmark::State& state) {
  auto db = OpenDb();
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    (void)txn->Commit();
  }
  int64_t i = 0;
  for (auto _ : state) {
    auto txn = db->Begin();
    (void)txn->SetNodeProperty(id, "v", PropertyValue(++i));
    benchmark::DoNotOptimize(txn->Commit());
  }
}
BENCHMARK(BM_SingleWriteCommit);

void BM_CreateNodeCommit(benchmark::State& state) {
  auto db = OpenDb();
  for (auto _ : state) {
    auto txn = db->Begin();
    (void)txn->CreateNode({"L"}, {{"v", PropertyValue(int64_t{1})}});
    benchmark::DoNotOptimize(txn->Commit());
  }
}
BENCHMARK(BM_CreateNodeCommit);

void BM_LockAcquireReleaseExclusive(benchmark::State& state) {
  LockManager lm;
  const EntityKey key = EntityKey::Node(1);
  TxnId txn = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lm.AcquireExclusive(txn, key, false));
    lm.ReleaseAll(txn);
    ++txn;
  }
}
BENCHMARK(BM_LockAcquireReleaseExclusive);

void BM_LockSharedThroughput(benchmark::State& state) {
  static LockManager lm;
  const EntityKey key = EntityKey::Node(state.thread_index());
  TxnId txn = state.thread_index() * 1000000 + 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lm.AcquireShared(txn, key));
    lm.Release(txn, key);
    ++txn;
  }
}
BENCHMARK(BM_LockSharedThroughput)->Threads(1)->Threads(4);

void BM_SnapshotRead(benchmark::State& state) {
  auto db = OpenDb();
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    (void)txn->Commit();
  }
  auto txn = db->Begin(IsolationLevel::kSnapshotIsolation);
  for (auto _ : state) {
    benchmark::DoNotOptimize(txn->GetNodeProperty(id, "v"));
  }
}
BENCHMARK(BM_SnapshotRead);

void BM_ReadCommittedRead(benchmark::State& state) {
  auto db = OpenDb();
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    (void)txn->Commit();
  }
  auto txn = db->Begin(IsolationLevel::kReadCommitted);
  for (auto _ : state) {
    benchmark::DoNotOptimize(txn->GetNodeProperty(id, "v"));
  }
}
BENCHMARK(BM_ReadCommittedRead);

}  // namespace
}  // namespace neosi

BENCHMARK_MAIN();
