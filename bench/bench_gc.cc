// Experiment E8 — the paper's central GC claim (§4): threading obsolete
// versions on a timestamp-sorted doubly-linked list makes collection cost
// proportional to the garbage collected, while a PostgreSQL-VACUUM-style
// collector scans (and rewrites) the whole store regardless.
//
// Two sweeps:
//   (a) fixed garbage, growing store  -> vacuum pause grows, threaded flat.
//   (b) fixed store, growing garbage  -> both grow with garbage; threaded
//       stays proportional (no full-scan floor).

#include "bench/bench_common.h"

namespace neosi {
namespace bench {
namespace {

struct Row {
  uint64_t store_size = 0;
  uint64_t garbage = 0;
  double threaded_ms = 0;
  uint64_t threaded_reclaimed = 0;
  double vacuum_ms = 0;
  uint64_t vacuum_scanned = 0;
};

std::unique_ptr<GraphDatabase> BuildStore(uint64_t entities) {
  auto db = OpenDb();
  auto txn = db->Begin();
  for (uint64_t i = 0; i < entities; ++i) {
    (void)txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    if (i % 1024 == 1023) {
      (void)txn->Commit();
      txn = db->Begin();
    }
  }
  (void)txn->Commit();
  return db;
}

void MakeGarbage(GraphDatabase& db, uint64_t updates) {
  // Each update of a node supersedes one version -> one GC-list entry.
  auto all = db.Begin()->AllNodes();
  const auto& nodes = *all;
  for (uint64_t i = 0; i < updates; ++i) {
    auto txn = db.Begin();
    (void)txn->SetNodeProperty(nodes[i % nodes.size()], "v",
                               PropertyValue(static_cast<int64_t>(i)));
    (void)txn->Commit();
  }
}

Row Measure(uint64_t store_size, uint64_t garbage, bool vacuum) {
  auto db = BuildStore(store_size);
  MakeGarbage(*db, garbage);
  Row row;
  row.store_size = store_size;
  row.garbage = garbage;
  if (vacuum) {
    VacuumStats stats = db->RunVacuum();
    row.vacuum_ms = stats.nanos / 1e6;
    row.vacuum_scanned = stats.records_scanned;
    row.threaded_reclaimed = stats.versions_pruned;
  } else {
    GcStats stats = db->RunGc();
    row.threaded_ms = stats.nanos / 1e6;
    row.threaded_reclaimed = stats.versions_pruned;
  }
  return row;
}

}  // namespace
}  // namespace bench
}  // namespace neosi

int main() {
  using namespace neosi;
  using namespace neosi::bench;

  Banner("E8: GC pause — timestamp-threaded list vs vacuum full scan",
         "threaded GC cost is O(garbage); vacuum cost is O(store), stalling "
         "processing on large stores (the PostgreSQL problem §4 cites)");

  std::printf("--- sweep (a): fixed garbage (2000 versions), growing store "
              "---\n");
  std::printf("%-12s %10s %14s %16s %12s %14s\n", "store", "garbage",
              "threaded(ms)", "reclaimed", "vacuum(ms)", "scanned");
  for (uint64_t store : {10000, 50000, 200000}) {
    const uint64_t sz = Scaled(store);
    Row threaded = Measure(sz, Scaled(2000), /*vacuum=*/false);
    Row vacuum = Measure(sz, Scaled(2000), /*vacuum=*/true);
    std::printf("%-12llu %10llu %14.2f %16llu %12.2f %14llu\n",
                static_cast<unsigned long long>(sz),
                static_cast<unsigned long long>(threaded.garbage),
                threaded.threaded_ms,
                static_cast<unsigned long long>(threaded.threaded_reclaimed),
                vacuum.vacuum_ms,
                static_cast<unsigned long long>(vacuum.vacuum_scanned));
  }

  std::printf("\n--- sweep (b): fixed store (20000 nodes), growing garbage "
              "---\n");
  std::printf("%-12s %10s %14s %16s %12s %14s\n", "store", "garbage",
              "threaded(ms)", "reclaimed", "vacuum(ms)", "scanned");
  for (uint64_t garbage : {500, 2000, 8000, 32000}) {
    const uint64_t g = Scaled(garbage);
    Row threaded = Measure(Scaled(20000), g, /*vacuum=*/false);
    Row vacuum = Measure(Scaled(20000), g, /*vacuum=*/true);
    std::printf("%-12llu %10llu %14.2f %16llu %12.2f %14llu\n",
                static_cast<unsigned long long>(Scaled(20000)),
                static_cast<unsigned long long>(g), threaded.threaded_ms,
                static_cast<unsigned long long>(threaded.threaded_reclaimed),
                vacuum.vacuum_ms,
                static_cast<unsigned long long>(vacuum.vacuum_scanned));
  }

  std::printf("\n--- idle pass on a clean 100k store (the stall the paper "
              "avoids) ---\n");
  {
    auto db = BuildStore(Scaled(100000));
    GcStats gc = db->RunGc();
    VacuumStats vac = db->RunVacuum();
    std::printf("threaded idle pass: %.3f ms (reclaimed %llu)\n",
                gc.nanos / 1e6,
                static_cast<unsigned long long>(gc.versions_pruned));
    std::printf("vacuum   idle pass: %.3f ms (scanned %llu records)\n",
                vac.nanos / 1e6,
                static_cast<unsigned long long>(vac.records_scanned));
  }

  std::printf("\nexpected shape: threaded(ms) flat across sweep (a) and "
              "proportional to garbage in sweep (b); vacuum(ms) grows with "
              "store size even when idle.\n");
  return 0;
}
