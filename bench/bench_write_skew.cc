// Experiment E10 — write skew, SI's one anomaly (paper §1), and the claim
// that "TPC-C never observes an anomaly when running on an SI database".
//
// (a) Doctors-on-call: concurrent go-off-call transactions under SI break
//     the ">= 1 on call" constraint with measurable frequency; promoting the
//     read into a write (materialized conflict on a ward token) removes it.
// (b) TPC-C-like order/payment mix: the warehouse stock invariant holds
//     under SI across every trial.

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/random.h"
#include "workload/bank.h"
#include "workload/driver.h"
#include "workload/tpcc_graph.h"

namespace neosi {
namespace bench {
namespace {

// One trial: reset both doctors on-call, race two off-call transactions.
// Returns true if the constraint broke (both off call).
bool WardTrial(GraphDatabase& db, const OnCallWard& ward, NodeId ward_token,
               bool materialize) {
  {
    auto reset = db.Begin();
    (void)reset->SetNodeProperty(ward.doctor_a, "on_call",
                                 PropertyValue(true));
    (void)reset->SetNodeProperty(ward.doctor_b, "on_call",
                                 PropertyValue(true));
    (void)reset->Commit();
  }
  auto body = [&](bool is_a) {
    auto txn = db.Begin(IsolationLevel::kSnapshotIsolation);
    const NodeId self = is_a ? ward.doctor_a : ward.doctor_b;
    const NodeId other = is_a ? ward.doctor_b : ward.doctor_a;
    auto other_on = txn->GetNodeProperty(other, "on_call");
    if (!other_on.ok()) return;
    if (other_on->AsBool()) {
      if (materialize) {
        // Materialized conflict: both transactions write the ward token,
        // so first-updater-wins serializes them.
        if (!txn->SetNodeProperty(ward_token, "epoch",
                                  PropertyValue(static_cast<int64_t>(
                                      txn->start_ts() + 1)))
                 .ok()) {
          return;
        }
      }
      if (!txn->SetNodeProperty(self, "on_call", PropertyValue(false)).ok()) {
        return;
      }
    }
    (void)txn->Commit();
  };
  std::thread t1(body, true);
  std::thread t2(body, false);
  t1.join();
  t2.join();
  return !*WardConstraintHolds(db, ward);
}

// One cell of table (c): `threads` racers, each with its own doctor, all
// going off call at once from an all-on-call state. SI lets disjoint write
// sets slide past each other (violations > 0); serializable mode pays
// retryable SerializationFailure aborts instead and must never violate.
struct SkewCell {
  uint64_t commits = 0;
  uint64_t ssi_aborts = 0;
  uint64_t violations = 0;
  double secs = 0;
};

SkewCell SkewRace(IsolationLevel iso, int threads, uint64_t trials) {
  auto db = OpenDb();
  const int doctor_count = std::max(2, threads);
  std::vector<NodeId> doctors;
  {
    auto txn = db->Begin();
    for (int i = 0; i < doctor_count; ++i) {
      doctors.push_back(*txn->CreateNode(
          {"Doctor"}, {{"on_call", PropertyValue(true)}}));
    }
    (void)txn->Commit();
  }
  SkewCell cell;
  std::atomic<uint64_t> commits{0};
  std::atomic<uint64_t> aborts{0};
  Timer timer;
  for (uint64_t t = 0; t < trials; ++t) {
    {
      auto reset = db->Begin();
      for (NodeId d : doctors) {
        (void)reset->SetNodeProperty(d, "on_call", PropertyValue(true));
      }
      (void)reset->Commit();
    }
    auto body = [&](int self) {
      auto txn = db->Begin(iso);
      bool other_on_call = false;
      for (int i = 0; i < doctor_count; ++i) {
        if (i == self) continue;
        auto on = txn->GetNodeProperty(doctors[i], "on_call");
        if (!on.ok()) {
          if (on.status().IsSerializationFailure()) aborts.fetch_add(1);
          return;
        }
        if (on->AsBool()) other_on_call = true;
      }
      if (other_on_call) {
        Status w = txn->SetNodeProperty(doctors[self], "on_call",
                                        PropertyValue(false));
        if (!w.ok()) {
          if (w.IsSerializationFailure()) aborts.fetch_add(1);
          return;
        }
      }
      Status c = txn->Commit();
      if (c.ok()) {
        commits.fetch_add(1);
      } else if (c.IsSerializationFailure()) {
        aborts.fetch_add(1);
      }
    };
    std::vector<std::thread> racers;
    racers.reserve(threads);
    for (int i = 0; i < threads; ++i) racers.emplace_back(body, i);
    for (auto& r : racers) r.join();
    bool any_on_call = false;
    auto audit = db->Begin();
    for (NodeId d : doctors) {
      if ((*audit->GetNodeProperty(d, "on_call")).AsBool()) {
        any_on_call = true;
      }
    }
    (void)audit->Commit();
    if (!any_on_call) ++cell.violations;
  }
  cell.secs = timer.Seconds();
  cell.commits = commits.load();
  cell.ssi_aborts = aborts.load();
  return cell;
}

}  // namespace
}  // namespace bench
}  // namespace neosi

int main() {
  using namespace neosi;
  using namespace neosi::bench;

  Banner("E10: write skew — SI's only anomaly",
         "SI admits write skew on disjoint write sets (doctors-on-call); "
         "materializing the conflict removes it; the TPC-C-style workload "
         "never exhibits it");

  const uint64_t trials = Scaled(300);

  std::printf("--- (a) doctors-on-call, %llu racing trials each ---\n",
              static_cast<unsigned long long>(trials));
  std::printf("%-28s %12s %12s\n", "variant", "violations", "rate");
  for (bool materialize : {false, true}) {
    auto db = OpenDb();
    auto ward = *BuildWard(*db);
    NodeId token;
    {
      auto txn = db->Begin();
      token = *txn->CreateNode({"Ward"},
                               {{"epoch", PropertyValue(int64_t{0})}});
      (void)txn->Commit();
    }
    uint64_t violations = 0;
    for (uint64_t t = 0; t < trials; ++t) {
      if (WardTrial(*db, ward, token, materialize)) ++violations;
    }
    std::printf("%-28s %12llu %11.2f%%\n",
                materialize ? "SI + materialized conflict" : "plain SI",
                static_cast<unsigned long long>(violations),
                100.0 * violations / trials);
  }

  std::printf("\n--- (b) TPC-C-like mix under SI (stock invariant audits) "
              "---\n");
  {
    auto db = OpenDb();
    TpccSpec spec;
    spec.warehouses = 1;
    spec.items_per_warehouse = 50;
    spec.customers_per_warehouse = 10;
    auto graph = *BuildTpccGraph(*db, spec);
    const int64_t expected = graph.ExpectedStockPlusOrdered(0);

    uint64_t audits = 0, violations = 0;
    for (int round = 0; round < 5; ++round) {
      DriverResult result = RunForOps(4, Scaled(50), [&](int t, uint64_t op) {
        Random rng(round * 1000 + t * 31 + op);
        if (rng.Bernoulli(0.7)) {
          std::vector<uint64_t> items;
          for (int i = 0; i < 3; ++i) items.push_back(rng.Uniform(50));
          return NewOrder(*db, graph, 0, rng.Uniform(10), items, 1,
                          IsolationLevel::kSnapshotIsolation);
        }
        return Payment(*db, graph, 0, rng.Uniform(10),
                       static_cast<int64_t>(rng.Uniform(100)),
                       IsolationLevel::kSnapshotIsolation);
      });
      (void)result;
      ++audits;
      if (*AuditWarehouse(*db, graph, 0) != expected) ++violations;
    }
    std::printf("audits=%llu invariant-violations=%llu\n",
                static_cast<unsigned long long>(audits),
                static_cast<unsigned long long>(violations));
  }

  std::printf("\n--- (c) SI vs serializable (SSI), N racing off-call txns "
              "---\n");
  std::printf("%-14s %8s %10s %10s %11s %11s\n", "mode", "threads", "commits",
              "ssi-aborts", "violations", "commits/s");
  const uint64_t skew_trials = Scaled(150);
  for (IsolationLevel iso :
       {IsolationLevel::kSnapshotIsolation, IsolationLevel::kSerializable}) {
    for (int threads : {1, 2, 4, 8}) {
      SkewCell cell = SkewRace(iso, threads, skew_trials);
      std::printf("%-14s %8d %10llu %10llu %11llu %11.0f\n",
                  iso == IsolationLevel::kSerializable ? "serializable"
                                                       : "snapshot",
                  threads, static_cast<unsigned long long>(cell.commits),
                  static_cast<unsigned long long>(cell.ssi_aborts),
                  static_cast<unsigned long long>(cell.violations),
                  cell.secs > 0 ? cell.commits / cell.secs : 0.0);
    }
  }

  std::printf("\nexpected shape: plain SI violation rate > 0 (write skew "
              "exists); materialized-conflict rate identically 0; TPC-C "
              "invariant violations identically 0; serializable-mode "
              "violations identically 0 at every thread count, paid for "
              "with retryable ssi-aborts and the commit_mu_-serialized "
              "commit decision.\n");
  return 0;
}
