// Shared helpers for the experiment benches (E1..E12 in DESIGN.md §5).
//
// Each bench binary prints one or more tables reproducing a claim of the
// paper. Scale knob: NEOSI_BENCH_SCALE=<float> multiplies workload sizes
// (default 1.0 keeps every bench in the seconds range).

#ifndef NEOSI_BENCH_BENCH_COMMON_H_
#define NEOSI_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "graph/graph_database.h"

namespace neosi {
namespace bench {

inline double Scale() {
  const char* env = std::getenv("NEOSI_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double s = std::atof(env);
  return s > 0 ? s : 1.0;
}

inline uint64_t Scaled(uint64_t n) {
  return static_cast<uint64_t>(static_cast<double>(n) * Scale());
}

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration_cast<std::chrono::duration<double>>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  uint64_t Micros() const {
    return static_cast<uint64_t>(Seconds() * 1e6);
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void Banner(const std::string& experiment, const std::string& claim) {
  std::printf("\n=== %s ===\n", experiment.c_str());
  std::printf("paper claim: %s\n\n", claim.c_str());
}

/// gc_interval_ms == 0 disables the GC daemon entirely (no automatic
/// reclamation): benches that measure version-chain or watermark behaviour
/// need the garbage to stay put.
inline std::unique_ptr<GraphDatabase> OpenDb(
    ConflictPolicy policy = ConflictPolicy::kFirstUpdaterWinsWait,
    uint64_t gc_interval_ms = 0, uint64_t gc_backlog_threshold = 1024) {
  DatabaseOptions options;
  options.in_memory = true;
  options.conflict_policy = policy;
  options.background_gc_interval_ms = gc_interval_ms;
  options.gc_backlog_threshold = gc_backlog_threshold;
  auto db = GraphDatabase::Open(options);
  if (!db.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    std::abort();
  }
  return std::move(*db);
}

}  // namespace bench
}  // namespace neosi

#endif  // NEOSI_BENCH_BENCH_COMMON_H_
