// Experiment E6 — version-list traversal cost (paper §4: "the right version
// for the reading transaction can be obtained by traversing the list of
// versions").
//
// One node accumulates V versions (GC disabled, a straggler snapshot pins
// them). A fresh-snapshot reader finds its version at the head (O(1)); a
// stale-snapshot reader walks the whole list (O(V)).

#include "bench/bench_common.h"

namespace neosi {
namespace bench {
namespace {

struct Row {
  uint64_t versions = 0;
  double fresh_ns = 0;
  double stale_ns = 0;
  uint64_t chain_len = 0;
};

Row RunRow(uint64_t versions, uint64_t reads) {
  auto db = OpenDb();
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    txn->Commit();
  }
  // Straggler pins every version.
  auto straggler = db->Begin(IsolationLevel::kSnapshotIsolation);
  (void)straggler->GetNodeProperty(id, "v");

  for (uint64_t i = 1; i < versions; ++i) {
    auto txn = db->Begin();
    (void)txn->SetNodeProperty(id, "v",
                               PropertyValue(static_cast<int64_t>(i)));
    (void)txn->Commit();
  }

  Row row;
  row.versions = versions;
  row.chain_len = db->engine().cache->PeekNode(id)->chain.Length();

  {
    // Fresh snapshot: visible version is at the head.
    auto reader = db->Begin(IsolationLevel::kSnapshotIsolation);
    Timer t;
    for (uint64_t r = 0; r < reads; ++r) {
      auto v = reader->GetNodeProperty(id, "v");
      if (!v.ok()) std::abort();
    }
    row.fresh_ns = t.Seconds() * 1e9 / static_cast<double>(reads);
  }
  {
    // Stale snapshot: visible version is at the tail.
    Timer t;
    for (uint64_t r = 0; r < reads; ++r) {
      auto v = straggler->GetNodeProperty(id, "v");
      if (!v.ok() || v->AsInt() != 0) std::abort();
    }
    row.stale_ns = t.Seconds() * 1e9 / static_cast<double>(reads);
  }
  return row;
}

}  // namespace
}  // namespace bench
}  // namespace neosi

int main() {
  using namespace neosi;
  using namespace neosi::bench;

  Banner("E6: read latency vs version-list length",
         "snapshot reads walk the per-entity version list: head hits are "
         "O(1), reads of old snapshots pay O(list length) — which is why GC "
         "matters (E8)");

  const uint64_t reads = Scaled(20000);
  std::printf("%-10s %10s %14s %14s %8s\n", "versions", "chain-len",
              "fresh-read(ns)", "stale-read(ns)", "ratio");
  for (uint64_t v : {1, 4, 16, 64, 256, 1024}) {
    const Row row = RunRow(v, reads);
    std::printf("%-10llu %10llu %14.0f %14.0f %7.1fx\n",
                static_cast<unsigned long long>(row.versions),
                static_cast<unsigned long long>(row.chain_len), row.fresh_ns,
                row.stale_ns,
                row.fresh_ns > 0 ? row.stale_ns / row.fresh_ns : 0.0);
  }
  std::printf("\nexpected shape: fresh-read latency flat in V; stale-read "
              "latency grows roughly linearly with V.\n");
  return 0;
}
