// Experiment E6 — version-list traversal cost (paper §4: "the right version
// for the reading transaction can be obtained by traversing the list of
// versions").
//
// One node accumulates V versions (GC disabled, a straggler snapshot pins
// them). A fresh-snapshot reader finds its version at the head (O(1)); a
// stale-snapshot reader walks the whole list (O(V)).
//
// Both read-path modes are measured side by side: "latched" takes the chain
// SpinLatch per walk (the pre-epoch baseline, latch_free_reads=false);
// "epoch" walks raw atomic links inside an epoch guard (the default). The
// single-threaded latency contrast isolates the per-walk cost of the guard
// (one CAS + fence) against the cost of the latch.

#include "bench/bench_common.h"

namespace neosi {
namespace bench {
namespace {

struct Row {
  uint64_t versions = 0;
  double fresh_ns = 0;
  double stale_ns = 0;
  uint64_t chain_len = 0;
};

Row RunRow(uint64_t versions, uint64_t reads, bool latch_free) {
  DatabaseOptions options;
  options.in_memory = true;
  options.conflict_policy = ConflictPolicy::kFirstUpdaterWinsWait;
  options.background_gc_interval_ms = 0;  // garbage must stay put
  options.latch_free_reads = latch_free;
  auto opened = GraphDatabase::Open(options);
  if (!opened.ok()) std::abort();
  auto db = std::move(*opened);
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    txn->Commit();
  }
  // Straggler pins every version.
  auto straggler = db->Begin(IsolationLevel::kSnapshotIsolation);
  (void)straggler->GetNodeProperty(id, "v");

  for (uint64_t i = 1; i < versions; ++i) {
    auto txn = db->Begin();
    (void)txn->SetNodeProperty(id, "v",
                               PropertyValue(static_cast<int64_t>(i)));
    (void)txn->Commit();
  }

  Row row;
  row.versions = versions;
  row.chain_len = db->engine().cache->PeekNode(id)->chain.Length();

  {
    // Fresh snapshot: visible version is at the head.
    auto reader = db->Begin(IsolationLevel::kSnapshotIsolation);
    Timer t;
    for (uint64_t r = 0; r < reads; ++r) {
      auto v = reader->GetNodeProperty(id, "v");
      if (!v.ok()) std::abort();
    }
    row.fresh_ns = t.Seconds() * 1e9 / static_cast<double>(reads);
  }
  {
    // Stale snapshot: visible version is at the tail.
    Timer t;
    for (uint64_t r = 0; r < reads; ++r) {
      auto v = straggler->GetNodeProperty(id, "v");
      if (!v.ok() || v->AsInt() != 0) std::abort();
    }
    row.stale_ns = t.Seconds() * 1e9 / static_cast<double>(reads);
  }
  return row;
}

}  // namespace
}  // namespace bench
}  // namespace neosi

int main() {
  using namespace neosi;
  using namespace neosi::bench;

  Banner("E6: read latency vs version-list length (latched vs epoch walks)",
         "snapshot reads walk the per-entity version list: head hits are "
         "O(1), reads of old snapshots pay O(list length) — which is why GC "
         "matters (E8). The epoch columns replace the per-walk SpinLatch "
         "with an epoch guard (latch-free traversal)");

  const uint64_t reads = Scaled(20000);
  std::printf("%-10s %10s %13s %13s %12s %12s\n", "versions", "chain-len",
              "fresh-latch", "fresh-epoch", "stale-latch", "stale-epoch");
  std::printf("%-10s %10s %13s %13s %12s %12s\n", "", "", "(ns)", "(ns)",
              "(ns)", "(ns)");
  for (uint64_t v : {1, 4, 16, 64, 256, 1024}) {
    const Row latched = RunRow(v, reads, /*latch_free=*/false);
    const Row epoch = RunRow(v, reads, /*latch_free=*/true);
    std::printf("%-10llu %10llu %13.0f %13.0f %12.0f %12.0f\n",
                static_cast<unsigned long long>(latched.versions),
                static_cast<unsigned long long>(latched.chain_len),
                latched.fresh_ns, epoch.fresh_ns, latched.stale_ns,
                epoch.stale_ns);
  }
  std::printf("\nexpected shape: fresh-read latency flat in V, stale-read "
              "latency roughly linear in V, in BOTH modes; single-threaded "
              "the two columns sit within noise of each other (the epoch "
              "guard trades the latch for one CAS + fence) — the epoch "
              "mode's payoff is multi-reader scaling, measured in E15.\n");
  return 0;
}
