// Micro benchmarks: versioned index operations.

#include <benchmark/benchmark.h>

#include "index/label_index.h"
#include "index/property_index.h"

namespace neosi {
namespace {

void BM_LabelIndexAddCommit(benchmark::State& state) {
  LabelIndex index;
  NodeId node = 0;
  for (auto _ : state) {
    index.AddPending(1, node, 7);
    index.CommitAdd(1, node, 7, node + 1);
    ++node;
  }
}
BENCHMARK(BM_LabelIndexAddCommit);

void BM_LabelIndexLookup(benchmark::State& state) {
  LabelIndex index;
  for (NodeId n = 0; n < static_cast<NodeId>(state.range(0)); ++n) {
    index.AddPending(1, n, 7);
    index.CommitAdd(1, n, 7, 5);
  }
  const Snapshot snap{100, kNoTxn};
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Lookup(1, snap));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LabelIndexLookup)->Arg(100)->Arg(10000);

void BM_LabelIndexLookupWithDeadEntries(benchmark::State& state) {
  LabelIndex index;
  // Half the entries are dead intervals (removed below any snapshot).
  for (NodeId n = 0; n < static_cast<NodeId>(state.range(0)); ++n) {
    index.AddPending(1, n, 7);
    index.CommitAdd(1, n, 7, 5);
    if (n % 2 == 0) {
      index.RemovePending(1, n, 8);
      index.CommitRemove(1, n, 8, 6);
    }
  }
  const Snapshot snap{100, kNoTxn};
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Lookup(1, snap));
  }
}
BENCHMARK(BM_LabelIndexLookupWithDeadEntries)->Arg(10000);

void BM_PropertyIndexPointLookup(benchmark::State& state) {
  PropertyIndex index;
  for (int64_t v = 0; v < state.range(0); ++v) {
    index.AddPending(1, PropertyValue(v), static_cast<uint64_t>(v), 7);
    index.CommitAdd(1, PropertyValue(v), static_cast<uint64_t>(v), 7, 5);
  }
  const Snapshot snap{100, kNoTxn};
  const PropertyValue needle(state.range(0) / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Lookup(1, needle, snap));
  }
}
BENCHMARK(BM_PropertyIndexPointLookup)->Arg(1000)->Arg(100000);

void BM_PropertyIndexRangeScan(benchmark::State& state) {
  PropertyIndex index;
  for (int64_t v = 0; v < 100000; ++v) {
    index.AddPending(1, PropertyValue(v), static_cast<uint64_t>(v), 7);
    index.CommitAdd(1, PropertyValue(v), static_cast<uint64_t>(v), 7, 5);
  }
  const Snapshot snap{100, kNoTxn};
  const int64_t width = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Scan(1, PropertyValue(int64_t{50000}),
                                        PropertyValue(50000 + width), snap));
  }
  state.SetItemsProcessed(state.iterations() * width);
}
BENCHMARK(BM_PropertyIndexRangeScan)->Arg(10)->Arg(1000);

void BM_IndexCompact(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    LabelIndex index;
    for (NodeId n = 0; n < 10000; ++n) {
      index.AddPending(1, n, 7);
      index.CommitAdd(1, n, 7, 5);
      index.RemovePending(1, n, 8);
      index.CommitRemove(1, n, 8, 6);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(index.Compact(100));
  }
}
BENCHMARK(BM_IndexCompact);

}  // namespace
}  // namespace neosi

BENCHMARK_MAIN();
