// Experiment E3 — path stability under churn (paper §1).
//
// "a path that has been traversed might not exist when trying to go through
// it later in the same transaction (e.g. due to a two-step graph
// algorithm)". A walker picks a 2-hop path in step 1 and re-walks it in
// step 2 while deleter threads cut random edges (and re-create them).
// Broken re-walks are the anomaly.

#include <atomic>
#include <mutex>
#include <thread>

#include "bench/bench_common.h"
#include "common/random.h"
#include "workload/social_graph.h"

namespace neosi {
namespace bench {
namespace {

struct Cell {
  uint64_t walks = 0;
  uint64_t broken = 0;
};

Cell RunCell(IsolationLevel isolation, int deleters, uint64_t walks,
             uint64_t people) {
  auto db = OpenDb(ConflictPolicy::kFirstUpdaterWinsWait,
                   /*gc_interval_ms=*/10, /*gc_backlog_threshold=*/512);
  SocialGraphSpec spec;
  spec.people = people;
  spec.extra_edges_per_person = 2;
  auto graph = *BuildSocialGraph(*db, spec);

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int d = 0; d < deleters; ++d) {
    threads.emplace_back([&, d] {
      Random rng(d * 7 + 11);
      while (!stop.load(std::memory_order_relaxed)) {
        // Delete an edge and commit, then re-create it in a SEPARATE
        // transaction: between the two commits the edge does not exist,
        // which is the window a read-committed walker can fall into.
        NodeId src = kInvalidNodeId, dst = kInvalidNodeId;
        {
          auto txn = db->Begin(IsolationLevel::kSnapshotIsolation);
          const NodeId victim =
              graph.people[rng.Uniform(graph.people.size())];
          auto rels = txn->GetRelationships(victim);
          if (!rels.ok() || rels->empty()) continue;
          const RelId edge = (*rels)[rng.Uniform(rels->size())];
          auto view = txn->GetRelationship(edge);
          if (!view.ok()) continue;
          if (!txn->DeleteRelationship(edge).ok()) continue;
          if (!txn->Commit().ok()) continue;
          src = view->src;
          dst = view->dst;
        }
        {
          auto txn = db->Begin(IsolationLevel::kSnapshotIsolation);
          if (txn->CreateRelationship(src, dst, "KNOWS").ok()) {
            (void)txn->Commit();
          }
        }
      }
    });
  }

  Cell cell;
  Random rng(99);
  for (uint64_t w = 0; w < walks; ++w) {
    auto txn = db->Begin(isolation);
    const NodeId start = graph.people[rng.Uniform(graph.people.size())];
    // Step 1: discover a 2-hop path start -> mid -> end.
    auto first_rels = txn->GetRelationships(start);
    if (!first_rels.ok() || first_rels->empty()) continue;
    auto first_view =
        txn->GetRelationship((*first_rels)[rng.Uniform(first_rels->size())]);
    if (!first_view.ok()) continue;
    const NodeId mid = first_view->OtherEnd(start);
    auto second_rels = txn->GetRelationships(mid);
    if (!second_rels.ok() || second_rels->empty()) continue;
    const RelId leg1 = first_view->id;
    const RelId leg2 = (*second_rels)[rng.Uniform(second_rels->size())];

    // Step boundary: a two-step algorithm does real work here.
    std::this_thread::sleep_for(std::chrono::microseconds(100));

    // Step 2: both legs must still exist for this transaction.
    ++cell.walks;
    if (!txn->RelExists(leg1) || !txn->RelExists(leg2)) ++cell.broken;
    (void)txn->Commit();
  }
  stop.store(true);
  for (auto& t : threads) t.join();
  return cell;
}

}  // namespace
}  // namespace bench
}  // namespace neosi

int main() {
  using namespace neosi;
  using namespace neosi::bench;

  Banner("E3: two-step traversal path stability",
         "under read committed a traversed path can vanish mid-transaction; "
         "snapshot isolation keeps every observed path alive");

  const uint64_t walks = Scaled(1500);
  const uint64_t people = Scaled(200);  // Small region: concentrated churn.
  std::printf("%-20s %9s %8s %8s %12s\n", "isolation", "deleters", "walks",
              "broken", "broken-rate");
  for (IsolationLevel isolation :
       {IsolationLevel::kReadCommitted, IsolationLevel::kSnapshotIsolation}) {
    for (int deleters : {1, 2, 4}) {
      const auto cell = RunCell(isolation, deleters, walks, people);
      std::printf("%-20s %9d %8llu %8llu %11.4f%%\n",
                  std::string(IsolationLevelToString(isolation)).c_str(),
                  deleters, static_cast<unsigned long long>(cell.walks),
                  static_cast<unsigned long long>(cell.broken),
                  cell.walks ? 100.0 * cell.broken / cell.walks : 0.0);
    }
  }
  std::printf("\nexpected shape: ReadCommitted broken-rate > 0 in every "
              "cell (additional deleters mostly conflict with each other, "
              "so the rate need not grow monotonically); SnapshotIsolation "
              "identically 0.\n");
  return 0;
}
