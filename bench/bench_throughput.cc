// Experiment E11 — end-to-end throughput & latency, read committed vs
// snapshot isolation (paper §1: SI "provides an isolation very close to ...
// serializability while avoiding read-write conflicts").
//
// Social-graph workload: read transactions do a 1-hop neighbourhood read
// with property fetches; write transactions update a person and an edge.
// Read/write mix and thread count are swept for both isolation levels.

#include "bench/bench_common.h"
#include "common/random.h"
#include "workload/driver.h"
#include "workload/social_graph.h"

namespace neosi {
namespace bench {
namespace {

struct Cell {
  DriverResult result;
};

Cell RunCell(IsolationLevel isolation, double read_fraction, int threads,
             uint64_t duration_ms, const SocialGraph& graph,
             GraphDatabase& db) {
  Cell cell;
  cell.result = RunForDuration(threads, duration_ms, [&](int t, uint64_t op) {
    Random rng(t * 104729 + op);
    const NodeId person = graph.people[rng.Uniform(graph.people.size())];
    auto txn = db.Begin(isolation);
    if (rng.NextDouble() < read_fraction) {
      // Read txn: neighbourhood + properties.
      auto rels = txn->GetRelationships(person);
      NEOSI_RETURN_IF_ERROR(rels.status());
      auto name = txn->GetNodeProperty(person, "name");
      NEOSI_RETURN_IF_ERROR(name.status());
      for (RelId r : *rels) {
        auto since = txn->GetRelProperty(r, "since");
        if (!since.ok() && !since.status().IsNotFound()) {
          return since.status();
        }
      }
    } else {
      // Write txn: bump the person's age, touch one incident edge.
      auto age = txn->GetNodeProperty(person, "age");
      NEOSI_RETURN_IF_ERROR(age.status());
      NEOSI_RETURN_IF_ERROR(txn->SetNodeProperty(
          person, "age", PropertyValue(age->AsInt() + 1)));
      auto rels = txn->GetRelationships(person);
      NEOSI_RETURN_IF_ERROR(rels.status());
      if (!rels->empty()) {
        NEOSI_RETURN_IF_ERROR(txn->SetRelProperty(
            (*rels)[rng.Uniform(rels->size())], "since",
            PropertyValue(static_cast<int64_t>(2000 + rng.Uniform(26)))));
      }
    }
    return txn->Commit();
  });
  return cell;
}

}  // namespace
}  // namespace bench
}  // namespace neosi

int main() {
  using namespace neosi;
  using namespace neosi::bench;

  Banner("E11: throughput & latency, RC vs SI",
         "removing short read locks lets SI readers run through writers' "
         "long write locks: higher throughput and flatter tail latency, "
         "especially in mixed workloads");

  const uint64_t duration_ms = static_cast<uint64_t>(250 * Scale());

  std::printf("%-20s %7s %8s %10s %12s %10s %10s\n", "isolation", "read%",
              "threads", "txn/s", "abort-rate", "p50(us)", "p99(us)");
  for (double read_fraction : {0.95, 0.80, 0.50}) {
    // A fresh database per mix keeps version chains comparable.
    auto db = OpenDb(ConflictPolicy::kFirstUpdaterWinsWait,
                     /*gc_every=*/1024);
    SocialGraphSpec spec;
    spec.people = Scaled(2000);
    auto graph = *BuildSocialGraph(*db, spec);
    for (IsolationLevel isolation : {IsolationLevel::kReadCommitted,
                                     IsolationLevel::kSnapshotIsolation}) {
      for (int threads : {1, 2, 4, 8}) {
        const Cell cell =
            RunCell(isolation, read_fraction, threads, duration_ms, graph,
                    *db);
        std::printf(
            "%-20s %6.0f%% %8d %10.0f %11.2f%% %10llu %10llu\n",
            std::string(IsolationLevelToString(isolation)).c_str(),
            read_fraction * 100, threads, cell.result.Throughput(),
            100.0 * cell.result.AbortRate(),
            static_cast<unsigned long long>(
                cell.result.latency_ns.Percentile(50) / 1000),
            static_cast<unsigned long long>(
                cell.result.latency_ns.Percentile(99) / 1000));
      }
    }
  }
  std::printf("\nexpected shape: SI >= RC throughput at every cell, with "
              "the gap widening as the write fraction and thread count grow "
              "(RC readers block on write locks and die under wait-die); SI "
              "p99 stays flat while RC p99 inflates.\n");
  return 0;
}
