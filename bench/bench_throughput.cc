// Experiment E11 — end-to-end throughput & latency, read committed vs
// snapshot isolation (paper §1: SI "provides an isolation very close to ...
// serializability while avoiding read-write conflicts").
//
// Social-graph workload: read transactions do a 1-hop neighbourhood read
// with property fetches; write transactions update a person and an edge.
// Read/write mix and thread count are swept for both isolation levels.
//
// E11b — commit pipeline scaling: write-only transactions on disjoint keys
// sweep the writer count. With the staged commit pipeline (no global commit
// mutex; ordered publication via the oracle watermark) commit throughput
// scales with writers instead of serializing end-to-end.
//
// E11c — group-commit WAL: the same sweep on an on-disk database with
// sync_commits=true; concurrent committers share one fsync per batch.
//
// E11d / E12 / E13 — GC daemon on vs off, checkpoint jitter fuzzy vs
// legacy, segmented-WAL disk high-water (see the banners below).
//
// E14 — bounded version backlog: backlog high-water with a pinned long
// reader, snapshot-too-old policy on vs off, plus a 1/4/8-shard GC drain
// sweep.
//
// Set NEOSI_BENCH_JSON=<path> to also emit every cell as JSON (the perf
// trajectory file BENCH_throughput.json).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/random.h"
#include "server/client.h"
#include "server/server.h"
#include "workload/driver.h"
#include "workload/social_graph.h"

namespace neosi {
namespace bench {
namespace {

struct JsonCell {
  std::string section;
  std::string config;
  int threads = 0;
  double txn_per_sec = 0;
  double abort_rate = 0;
  uint64_t p50_us = 0;
  uint64_t p99_us = 0;
};

std::vector<JsonCell>& Cells() {
  static std::vector<JsonCell> cells;
  return cells;
}

void Record(const std::string& section, const std::string& config,
            int threads, const DriverResult& r) {
  Cells().push_back({section, config, threads, r.Throughput(), r.AbortRate(),
                     r.latency_ns.Percentile(50) / 1000,
                     r.latency_ns.Percentile(99) / 1000});
}

void MaybeWriteJson() {
  const char* path = std::getenv("NEOSI_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') return;
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for JSON output\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"throughput\",\n");
  std::fprintf(f,
               "  \"note\": \"latch_free_reads cells measured on a "
               "single-core box unless stated otherwise: reader scaling "
               "curves are flat by construction there, so judge the "
               "epoch-vs-latched contrast on a multi-core runner\",\n");
  std::fprintf(f, "  \"cells\": [\n");
  for (size_t i = 0; i < Cells().size(); ++i) {
    const JsonCell& c = Cells()[i];
    std::fprintf(f,
                 "    {\"section\": \"%s\", \"config\": \"%s\", "
                 "\"threads\": %d, \"txn_per_sec\": %.1f, "
                 "\"abort_rate\": %.4f, \"p50_us\": %llu, \"p99_us\": %llu}%s\n",
                 c.section.c_str(), c.config.c_str(), c.threads,
                 c.txn_per_sec, c.abort_rate,
                 static_cast<unsigned long long>(c.p50_us),
                 static_cast<unsigned long long>(c.p99_us),
                 i + 1 < Cells().size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %zu cells to %s\n", Cells().size(), path);
}

DriverResult RunCell(IsolationLevel isolation, double read_fraction,
                     int threads, uint64_t duration_ms,
                     const SocialGraph& graph, GraphDatabase& db) {
  return RunForDuration(threads, duration_ms, [&](int t, uint64_t op) {
    Random rng(t * 104729 + op);
    const NodeId person = graph.people[rng.Uniform(graph.people.size())];
    auto txn = db.Begin(isolation);
    if (rng.NextDouble() < read_fraction) {
      // Read txn: neighbourhood + properties.
      auto rels = txn->GetRelationships(person);
      NEOSI_RETURN_IF_ERROR(rels.status());
      auto name = txn->GetNodeProperty(person, "name");
      NEOSI_RETURN_IF_ERROR(name.status());
      for (RelId r : *rels) {
        auto since = txn->GetRelProperty(r, "since");
        if (!since.ok() && !since.status().IsNotFound()) {
          return since.status();
        }
      }
    } else {
      // Write txn: bump the person's age, touch one incident edge.
      auto age = txn->GetNodeProperty(person, "age");
      NEOSI_RETURN_IF_ERROR(age.status());
      NEOSI_RETURN_IF_ERROR(txn->SetNodeProperty(
          person, "age", PropertyValue(age->AsInt() + 1)));
      auto rels = txn->GetRelationships(person);
      NEOSI_RETURN_IF_ERROR(rels.status());
      if (!rels->empty()) {
        NEOSI_RETURN_IF_ERROR(txn->SetRelProperty(
            (*rels)[rng.Uniform(rels->size())], "since",
            PropertyValue(static_cast<int64_t>(2000 + rng.Uniform(26)))));
      }
    }
    return txn->Commit();
  });
}

/// Write-only transactions over per-thread disjoint key ranges: pure commit
/// pipeline pressure with no conflict aborts. Each transaction updates
/// `writes_per_txn` nodes it exclusively owns.
DriverResult RunCommitScalingCell(GraphDatabase& db,
                                  const std::vector<NodeId>& nodes,
                                  int threads, uint64_t duration_ms,
                                  int writes_per_txn) {
  const size_t stripe = nodes.size() / static_cast<size_t>(threads);
  return RunForDuration(threads, duration_ms, [&, stripe](int t, uint64_t op) {
    Random rng(t * 7919 + op);
    auto txn = db.Begin(IsolationLevel::kSnapshotIsolation);
    const size_t base = static_cast<size_t>(t) * stripe;
    for (int i = 0; i < writes_per_txn; ++i) {
      const NodeId node = nodes[base + rng.Uniform(stripe)];
      NEOSI_RETURN_IF_ERROR(txn->SetNodeProperty(
          node, "v", PropertyValue(static_cast<int64_t>(op))));
    }
    return txn->Commit();
  });
}

Result<std::vector<NodeId>> BuildFlatNodes(GraphDatabase& db, size_t n) {
  std::vector<NodeId> nodes;
  nodes.reserve(n);
  auto txn = db.Begin();
  for (size_t i = 0; i < n; ++i) {
    auto id = txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    if (!id.ok()) return id.status();
    nodes.push_back(*id);
    if (i % 1024 == 1023) {
      NEOSI_RETURN_IF_ERROR(txn->Commit());
      txn = db.Begin();
    }
  }
  NEOSI_RETURN_IF_ERROR(txn->Commit());
  return nodes;
}

std::string MakeTempDir() {
  char tmpl[] = "/tmp/neosi_bench_XXXXXX";
  char* dir = mkdtemp(tmpl);
  return dir ? std::string(dir) : std::string();
}

/// Sum of the on-disk bytes of every WAL file in `dir` (E13's gauge).
uint64_t WalDiskBytesIn(const std::string& dir) {
  uint64_t total = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal.", 0) == 0) {
      const auto size = std::filesystem::file_size(entry, ec);
      // The checkpoint daemon unlinks segments concurrently: a file gone
      // between readdir and stat reports uintmax_t(-1), not a size.
      if (ec) {
        ec.clear();
        continue;
      }
      total += static_cast<uint64_t>(size);
    }
  }
  return total;
}

}  // namespace
}  // namespace bench
}  // namespace neosi

int main() {
  using namespace neosi;
  using namespace neosi::bench;

  Banner("E11: throughput & latency, RC vs SI",
         "removing short read locks lets SI readers run through writers' "
         "long write locks: higher throughput and flatter tail latency, "
         "especially in mixed workloads");

  const uint64_t duration_ms = static_cast<uint64_t>(250 * Scale());

  std::printf("%-20s %7s %8s %10s %12s %10s %10s\n", "isolation", "read%",
              "threads", "txn/s", "abort-rate", "p50(us)", "p99(us)");
  for (double read_fraction : {0.95, 0.80, 0.50}) {
    // A fresh database per mix keeps version chains comparable.
    auto db = OpenDb(ConflictPolicy::kFirstUpdaterWinsWait,
                     /*gc_interval_ms=*/10);
    SocialGraphSpec spec;
    spec.people = Scaled(2000);
    auto graph = *BuildSocialGraph(*db, spec);
    for (IsolationLevel isolation : {IsolationLevel::kReadCommitted,
                                     IsolationLevel::kSnapshotIsolation}) {
      for (int threads : {1, 2, 4, 8}) {
        const DriverResult r =
            RunCell(isolation, read_fraction, threads, duration_ms, graph,
                    *db);
        std::printf(
            "%-20s %6.0f%% %8d %10.0f %11.2f%% %10llu %10llu\n",
            std::string(IsolationLevelToString(isolation)).c_str(),
            read_fraction * 100, threads, r.Throughput(),
            100.0 * r.AbortRate(),
            static_cast<unsigned long long>(r.latency_ns.Percentile(50) /
                                            1000),
            static_cast<unsigned long long>(r.latency_ns.Percentile(99) /
                                            1000));
        char config[64];
        std::snprintf(config, sizeof(config), "%s/read%.0f",
                      std::string(IsolationLevelToString(isolation)).c_str(),
                      read_fraction * 100);
        Record("mixed", config, threads, r);
      }
    }
  }
  std::printf("\nexpected shape: SI >= RC throughput at every cell, with "
              "the gap widening as the write fraction and thread count grow "
              "(RC readers block on write locks and die under wait-die); SI "
              "p99 stays flat while RC p99 inflates.\n");

  Banner("E11b: commit pipeline scaling (write-only, disjoint keys)",
         "the staged commit pipeline validates under per-entity write "
         "locks, sequences only on a timestamp fetch-add, applies in "
         "parallel and publishes in order — multi-writer commit throughput "
         "scales instead of serializing behind a global commit mutex");

  {
    auto db = OpenDb(ConflictPolicy::kFirstUpdaterWinsWait,
                     /*gc_interval_ms=*/10);
    auto nodes = BuildFlatNodes(*db, Scaled(16384));
    if (!nodes.ok()) {
      std::printf("skipped: %s\n", nodes.status().ToString().c_str());
    } else {
      std::printf("%8s %12s %12s %10s %10s\n", "threads", "commits/s",
                  "scaling", "p50(us)", "p99(us)");
      double base = 0;
      for (int threads : {1, 2, 4, 8}) {
        const DriverResult r = RunCommitScalingCell(*db, *nodes, threads,
                                                    duration_ms,
                                                    /*writes_per_txn=*/4);
        if (threads == 1) base = r.Throughput();
        std::printf("%8d %12.0f %11.2fx %10llu %10llu\n", threads,
                    r.Throughput(), base > 0 ? r.Throughput() / base : 0.0,
                    static_cast<unsigned long long>(
                        r.latency_ns.Percentile(50) / 1000),
                    static_cast<unsigned long long>(
                        r.latency_ns.Percentile(99) / 1000));
        Record("commit_scaling", "write_only", threads, r);
      }
    }
  }

  Banner("E11c: group-commit WAL (on-disk, sync_commits)",
         "concurrent sync commits share one fsync per batch: throughput "
         "grows with writers even though every commit is durable");

  {
    const std::string dir = MakeTempDir();
    if (dir.empty()) {
      std::printf("skipped: cannot create temp dir\n");
    } else {
      DatabaseOptions options;
      options.in_memory = false;
      options.path = dir;
      options.sync_commits = true;
      options.background_gc_interval_ms = 10;
      auto opened = GraphDatabase::Open(options);
      if (!opened.ok()) {
        std::printf("skipped: %s\n", opened.status().ToString().c_str());
      } else {
        auto db = std::move(*opened);
        auto nodes = BuildFlatNodes(*db, Scaled(4096));
        if (!nodes.ok()) {
          std::printf("skipped: %s\n", nodes.status().ToString().c_str());
        } else {
          std::printf("%8s %12s %12s %10s %10s\n", "threads", "commits/s",
                      "scaling", "p50(us)", "p99(us)");
          double base = 0;
          for (int threads : {1, 2, 4, 8}) {
            const DriverResult r = RunCommitScalingCell(*db, *nodes, threads,
                                                        duration_ms,
                                                        /*writes_per_txn=*/2);
            if (threads == 1) base = r.Throughput();
            std::printf("%8d %12.0f %11.2fx %10llu %10llu\n", threads,
                        r.Throughput(),
                        base > 0 ? r.Throughput() / base : 0.0,
                        static_cast<unsigned long long>(
                            r.latency_ns.Percentile(50) / 1000),
                        static_cast<unsigned long long>(
                            r.latency_ns.Percentile(99) / 1000));
            Record("group_commit_sync", "write_only_fsync", threads, r);
          }
        }
      }
    }
  }

  Banner("E11d: watermark-paced GC daemon on vs off",
         "reclamation is fully asynchronous — committing threads only read "
         "one atomic backlog gauge, so commit throughput with the daemon "
         "collecting continuously stays at the no-GC-at-all level while the "
         "version backlog stays bounded");

  std::printf("%-12s %8s %12s %12s %14s %12s\n", "config", "threads",
              "commits/s", "p99(us)", "backlog-peak", "gc-passes");
  for (const bool daemon_on : {false, true}) {
    const char* config = daemon_on ? "daemon_on" : "daemon_off";
    // Fresh database per cell: the pacing stats are lifetime counters, so
    // sharing one database would attribute earlier cells' (and setup) GC
    // work to the wrong row.
    for (int threads : {1, 4}) {
      auto db = OpenDb(ConflictPolicy::kFirstUpdaterWinsWait,
                       /*gc_interval_ms=*/daemon_on ? 10 : 0,
                       /*gc_backlog_threshold=*/1024);
      auto nodes = BuildFlatNodes(*db, Scaled(16384));
      if (!nodes.ok()) {
        std::printf("skipped: %s\n", nodes.status().ToString().c_str());
        continue;
      }
      const DriverResult r = RunCommitScalingCell(*db, *nodes, threads,
                                                  duration_ms,
                                                  /*writes_per_txn=*/4);
      const DatabaseStats stats = db->Stats();
      std::printf("%-12s %8d %12.0f %12llu %14llu %12llu\n", config, threads,
                  r.Throughput(),
                  static_cast<unsigned long long>(
                      r.latency_ns.Percentile(99) / 1000),
                  static_cast<unsigned long long>(stats.gc_backlog_high_water),
                  static_cast<unsigned long long>(stats.gc_daemon_passes));
      if (daemon_on) {
        std::printf("  pacing: %llu nudge passes, %llu interval passes, "
                    "%llu reclaimed of %llu appended\n",
                    static_cast<unsigned long long>(
                        stats.gc_daemon_nudge_passes),
                    static_cast<unsigned long long>(
                        stats.gc_daemon_interval_passes),
                    static_cast<unsigned long long>(stats.gc_reclaimed),
                    static_cast<unsigned long long>(stats.gc_appended));
      }
      Record("gc_daemon", config, threads, r);
    }
  }

  Banner("E12: commit-latency jitter during checkpoint (fuzzy vs legacy)",
         "the fuzzy incremental checkpoint notes the stable LSN, syncs only "
         "dirty stores and truncates only the replayed WAL prefix — commits "
         "never stall behind it, unlike the legacy drain (gate all appends, "
         "drain in-flight commits, fsync every store, reset the log)");

  {
    std::printf("%-14s %8s %12s %10s %10s %10s %12s\n", "config", "threads",
                "commits/s", "p50(us)", "p99(us)", "p99.9(us)", "checkpoints");
    for (const char* config :
         {"no_checkpoint", "fuzzy", "legacy_drain"}) {
      for (int threads : {1, 2}) {
        const std::string dir = MakeTempDir();
        if (dir.empty()) {
          std::printf("skipped: cannot create temp dir\n");
          continue;
        }
        DatabaseOptions options;
        options.in_memory = false;
        options.path = dir;
        options.sync_commits = true;
        options.background_gc_interval_ms = 10;
        options.checkpoint_interval_ms = 0;  // Manual checkpointer below.
        auto opened = GraphDatabase::Open(options);
        if (!opened.ok()) {
          std::printf("skipped: %s\n", opened.status().ToString().c_str());
          continue;
        }
        auto db = std::move(*opened);
        auto nodes = BuildFlatNodes(*db, Scaled(4096));
        if (!nodes.ok()) {
          std::printf("skipped: %s\n", nodes.status().ToString().c_str());
          continue;
        }

        // Checkpoint continuously while the writers run, so the latency
        // distribution captures every commit that overlaps a checkpoint.
        std::atomic<bool> stop{false};
        std::atomic<uint64_t> checkpoints{0};
        std::thread checkpointer([&, config] {
          if (std::string(config) == "no_checkpoint") return;
          const bool fuzzy = std::string(config) == "fuzzy";
          while (!stop.load(std::memory_order_acquire)) {
            Status s = fuzzy ? db->Checkpoint()
                             : db->engine().store.CheckpointStopTheWorld();
            if (s.ok()) checkpoints.fetch_add(1);
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
          }
        });
        const DriverResult r = RunCommitScalingCell(*db, *nodes, threads,
                                                    duration_ms,
                                                    /*writes_per_txn=*/2);
        stop.store(true, std::memory_order_release);
        checkpointer.join();

        std::printf("%-14s %8d %12.0f %10llu %10llu %10llu %12llu\n", config,
                    threads, r.Throughput(),
                    static_cast<unsigned long long>(
                        r.latency_ns.Percentile(50) / 1000),
                    static_cast<unsigned long long>(
                        r.latency_ns.Percentile(99) / 1000),
                    static_cast<unsigned long long>(
                        r.latency_ns.Percentile(99.9) / 1000),
                    static_cast<unsigned long long>(checkpoints.load()));
        Record("checkpoint_jitter", config, threads, r);
      }
    }
    std::printf("\nexpected shape: fuzzy throughput and tail latency track "
                "the no-checkpoint baseline (commits never wait for a "
                "checkpoint); legacy_drain shows p99/p99.9 spikes — every "
                "commit that lands during the drain+fsync window stalls "
                "behind it.\n");
  }

  Banner("E13: sustained-write WAL disk high-water (segmented vs "
         "single-file)",
         "rotating fixed-size segments let checkpoints reclaim disk by "
         "unlinking whole dead segment files — unconditional on every "
         "backend; a single-file log (emulated with one giant segment) can "
         "only grow its extent between quiescent moments, so its on-disk "
         "high-water tracks TOTAL log volume instead of the live bytes");

  {
    std::printf("%-12s %8s %12s %16s %14s %12s\n", "config", "threads",
                "commits/s", "disk-peak(KiB)", "final(KiB)", "seg-deleted");
    for (const char* config : {"segmented", "single_file"}) {
      const int threads = 2;
      const std::string dir = MakeTempDir();
      if (dir.empty()) {
        std::printf("skipped: cannot create temp dir\n");
        continue;
      }
      DatabaseOptions options;
      options.in_memory = false;
      options.path = dir;
      options.background_gc_interval_ms = 10;
      options.checkpoint_interval_ms = 2;
      options.checkpoint_wal_threshold = 8ull << 10;  // 8 KiB
      // "single_file": one giant segment the workload never rolls past —
      // exactly the pre-rotation behaviour on a hole-less backend (nothing
      // below the head can be physically reclaimed while the log is hot).
      options.wal_segment_size =
          std::string(config) == "segmented" ? (32ull << 10) : (1ull << 30);
      options.wal_recycle_segments = 0;  // Delete-only: crisp footprints.
      auto opened = GraphDatabase::Open(options);
      if (!opened.ok()) {
        std::printf("skipped: %s\n", opened.status().ToString().c_str());
        continue;
      }
      auto db = std::move(*opened);
      auto nodes = BuildFlatNodes(*db, Scaled(4096));
      if (!nodes.ok()) {
        std::printf("skipped: %s\n", nodes.status().ToString().c_str());
        continue;
      }

      std::atomic<bool> stop{false};
      std::atomic<uint64_t> high_water{0};
      std::thread sampler([&] {
        while (!stop.load(std::memory_order_acquire)) {
          const uint64_t disk = WalDiskBytesIn(dir);
          uint64_t seen = high_water.load(std::memory_order_relaxed);
          while (disk > seen &&
                 !high_water.compare_exchange_weak(seen, disk)) {
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      });
      // 4x the standard window: the contrast needs enough TOTAL log volume
      // to dwarf the segmented bound (many segments' worth).
      const DriverResult r = RunCommitScalingCell(*db, *nodes, threads,
                                                  4 * duration_ms,
                                                  /*writes_per_txn=*/4);
      stop.store(true, std::memory_order_release);
      sampler.join();

      // Quiesce: after a final checkpoint the segmented log collapses to
      // one partial segment; the giant-segment log keeps its full extent.
      (void)db->Checkpoint();
      const uint64_t final_bytes = WalDiskBytesIn(dir);
      const DatabaseStats stats = db->Stats();
      std::printf("%-12s %8d %12.0f %16llu %14llu %12llu\n", config, threads,
                  r.Throughput(),
                  static_cast<unsigned long long>(high_water.load() >> 10),
                  static_cast<unsigned long long>(final_bytes >> 10),
                  static_cast<unsigned long long>(
                      stats.store.wal_segments_deleted +
                      stats.store.wal_segments_recycled));
      Record("wal_disk", config, threads, r);
    }
    std::printf("\nexpected shape: comparable commit throughput, but the "
                "segmented disk-peak stays near (live log + 2 segments) "
                "while single_file's peak equals the total log volume the "
                "run produced.\n");
  }

  Banner("E14: bounded version backlog — snapshot-too-old policy & sharded "
         "GC drain",
         "one long-lived reader pins the reclamation watermark, so under "
         "sustained writes the version backlog grows with TOTAL write "
         "volume; the snapshot lifecycle policy (snapshot_max_age_ms) "
         "expires the pinning snapshot, advances the watermark past it and "
         "keeps the backlog high-water bounded — and the entity-key-sharded "
         "GC list with per-shard drain workers reclaims the churn without a "
         "single-list bottleneck");

  {
    // Part 1 — pinned long reader, policy off vs on. A reader re-pins the
    // watermark continuously (new snapshot as soon as the previous one is
    // evicted or the hold expires); two writers churn versions. With the
    // policy off the backlog high-water tracks total appends; with a 20 ms
    // max age it stays bounded near one eviction window's worth.
    std::printf("%-12s %8s %12s %14s %14s %12s %10s\n", "config", "threads",
                "commits/s", "backlog-peak", "gc-appended", "evictions",
                "aborts");
    for (const bool policy_on : {false, true}) {
      const char* config = policy_on ? "policy_on" : "policy_off";
      DatabaseOptions options;
      options.in_memory = true;
      options.background_gc_interval_ms = 2;
      options.gc_backlog_threshold = 64;
      options.gc_shards = 4;
      options.snapshot_max_age_ms = policy_on ? 20 : 0;
      auto opened = GraphDatabase::Open(options);
      if (!opened.ok()) {
        std::printf("skipped: %s\n", opened.status().ToString().c_str());
        continue;
      }
      auto db = std::move(*opened);
      auto nodes = BuildFlatNodes(*db, Scaled(8192));
      if (!nodes.ok()) {
        std::printf("skipped: %s\n", nodes.status().ToString().c_str());
        continue;
      }

      std::atomic<bool> stop{false};
      std::atomic<uint64_t> evicted{0};
      std::thread pinner([&] {
        while (!stop.load(std::memory_order_acquire)) {
          auto txn = db->Begin(IsolationLevel::kSnapshotIsolation);
          (void)txn->GetNodeProperty((*nodes)[0], "v");
          // Hold the snapshot ~4 eviction windows (or forever, policy off:
          // re-pin immediately after the hold so the watermark never
          // advances for long).
          for (int i = 0; i < 80 && !stop.load(std::memory_order_acquire);
               ++i) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          auto again = txn->GetNodeProperty((*nodes)[0], "v");
          if (!again.ok() && again.status().IsSnapshotTooOld()) {
            evicted.fetch_add(1);
          }
        }
      });
      const int threads = 2;
      const DriverResult r = RunCommitScalingCell(*db, *nodes, threads,
                                                  2 * duration_ms,
                                                  /*writes_per_txn=*/4);
      stop.store(true, std::memory_order_release);
      pinner.join();
      const DatabaseStats stats = db->Stats();
      std::printf("%-12s %8d %12.0f %14llu %14llu %12llu %10llu\n", config,
                  threads, r.Throughput(),
                  static_cast<unsigned long long>(stats.gc_backlog_high_water),
                  static_cast<unsigned long long>(stats.gc_appended),
                  static_cast<unsigned long long>(
                      stats.snapshots_expired_age +
                      stats.snapshots_expired_backlog),
                  static_cast<unsigned long long>(
                      stats.snapshot_too_old_aborts));
      if (policy_on) {
        std::printf("  client-observed SnapshotTooOld evictions on the "
                    "pinning reader: %llu\n",
                    static_cast<unsigned long long>(evicted.load()));
      }
      Record("snapshot_lifecycle", config, threads, r);
    }
    std::printf("\nexpected shape: policy_off backlog-peak ~= gc-appended "
                "(the pinned watermark retains every superseded version); "
                "policy_on keeps it orders of magnitude lower at comparable "
                "commit throughput.\n");
  }

  {
    // Part 2 — sharded drain: update churn with the daemon collecting
    // continuously, swept over 1/4/8 shards (= drain workers). On a
    // multi-core box the sharded drains overlap with each other and the
    // writers; on the single-core CI box the interesting signal is that
    // sharding costs nothing.
    std::printf("%-12s %8s %12s %14s %14s %12s\n", "config", "threads",
                "commits/s", "backlog-peak", "reclaimed", "gc-passes");
    for (const size_t shards : {size_t{1}, size_t{4}, size_t{8}}) {
      DatabaseOptions options;
      options.in_memory = true;
      options.background_gc_interval_ms = 2;
      options.gc_backlog_threshold = 256;
      options.gc_shards = shards;
      auto opened = GraphDatabase::Open(options);
      if (!opened.ok()) {
        std::printf("skipped: %s\n", opened.status().ToString().c_str());
        continue;
      }
      auto db = std::move(*opened);
      auto nodes = BuildFlatNodes(*db, Scaled(16384));
      if (!nodes.ok()) {
        std::printf("skipped: %s\n", nodes.status().ToString().c_str());
        continue;
      }
      const int threads = 4;
      const DriverResult r = RunCommitScalingCell(*db, *nodes, threads,
                                                  duration_ms,
                                                  /*writes_per_txn=*/4);
      const DatabaseStats stats = db->Stats();
      char config[32];
      std::snprintf(config, sizeof(config), "shards%zu", shards);
      std::printf("%-12s %8d %12.0f %14llu %14llu %12llu\n", config, threads,
                  r.Throughput(),
                  static_cast<unsigned long long>(stats.gc_backlog_high_water),
                  static_cast<unsigned long long>(stats.gc_reclaimed),
                  static_cast<unsigned long long>(stats.gc_daemon_passes));
      Record("gc_shards", config, threads, r);
    }
  }

  Banner("E15: latch-free read path — epoch-based reclamation vs latched "
         "chain walks",
         "read-mostly SI throughput stops degrading with reader count once "
         "committed-visibility walks acquire no latches: readers enter an "
         "epoch (one CAS into a padded slot + one fence) and traverse raw "
         "atomic links, so concurrent readers of a hot entity no longer "
         "serialize on its chain SpinLatch; RC rides the same path and "
         "stops pinning the GC watermark entirely");

  {
    std::printf("%-10s %-20s %7s %8s %10s %12s %10s %10s\n", "reads",
                "isolation", "read%", "threads", "txn/s", "abort-rate",
                "p50(us)", "p99(us)");
    for (const bool latch_free : {false, true}) {
      const char* mode = latch_free ? "epoch" : "latched";
      for (double read_fraction : {0.95, 1.0}) {
        // A fresh database per (mode, mix): comparable chain lengths, and
        // the latched baseline must never share an engine with epoch cells.
        DatabaseOptions options;
        options.in_memory = true;
        options.conflict_policy = ConflictPolicy::kFirstUpdaterWinsWait;
        options.background_gc_interval_ms = 10;
        options.latch_free_reads = latch_free;
        auto opened = GraphDatabase::Open(options);
        if (!opened.ok()) {
          std::printf("skipped: %s\n", opened.status().ToString().c_str());
          continue;
        }
        auto db = std::move(*opened);
        SocialGraphSpec spec;
        spec.people = Scaled(2000);
        auto graph = *BuildSocialGraph(*db, spec);
        for (IsolationLevel isolation : {IsolationLevel::kSnapshotIsolation,
                                         IsolationLevel::kReadCommitted}) {
          for (int threads : {1, 2, 4, 8}) {
            const DriverResult r = RunCell(isolation, read_fraction, threads,
                                           duration_ms, graph, *db);
            std::printf(
                "%-10s %-20s %6.0f%% %8d %10.0f %11.2f%% %10llu %10llu\n",
                mode, std::string(IsolationLevelToString(isolation)).c_str(),
                read_fraction * 100, threads, r.Throughput(),
                100.0 * r.AbortRate(),
                static_cast<unsigned long long>(r.latency_ns.Percentile(50) /
                                                1000),
                static_cast<unsigned long long>(r.latency_ns.Percentile(99) /
                                                1000));
            char config[64];
            std::snprintf(
                config, sizeof(config), "%s/%s/read%.0f", mode,
                std::string(IsolationLevelToString(isolation)).c_str(),
                read_fraction * 100);
            Record("latch_free_reads", config, threads, r);
          }
        }
      }
    }
    std::printf("\nexpected shape (multi-core): epoch SI/RC read-mostly "
                "throughput is monotone non-degrading 1->8 threads while "
                "latched throughput decays as readers contend on hot-chain "
                "SpinLatches; at 1 thread the two modes are within noise "
                "(the epoch guard costs one CAS + fence per walk). On a "
                "single-core box all curves are flat and the contrast is "
                "the per-walk overhead only.\n");
  }

  Banner("E16: serializable (SSI) overhead vs plain SI, read-mostly",
         "full serializability costs SIREAD marker maintenance on every "
         "read, rw-antidependency bookkeeping and one commit-decision "
         "mutex across serializable committers — the read-mostly mix "
         "bounds that overhead against the SI baseline, and retryable "
         "SerializationFailure aborts replace silent write skew");

  {
    const double read_fraction = 0.95;
    auto db = OpenDb(ConflictPolicy::kFirstUpdaterWinsWait,
                     /*gc_interval_ms=*/10);
    SocialGraphSpec spec;
    spec.people = Scaled(2000);
    auto graph = *BuildSocialGraph(*db, spec);
    std::printf("%-20s %7s %8s %10s %12s %10s %10s\n", "isolation", "read%",
                "threads", "txn/s", "abort-rate", "p50(us)", "p99(us)");
    for (IsolationLevel isolation : {IsolationLevel::kSnapshotIsolation,
                                     IsolationLevel::kSerializable}) {
      for (int threads : {1, 2, 4, 8}) {
        const DriverResult r = RunCell(isolation, read_fraction, threads,
                                       duration_ms, graph, *db);
        std::printf(
            "%-20s %6.0f%% %8d %10.0f %11.2f%% %10llu %10llu\n",
            std::string(IsolationLevelToString(isolation)).c_str(),
            read_fraction * 100, threads, r.Throughput(),
            100.0 * r.AbortRate(),
            static_cast<unsigned long long>(r.latency_ns.Percentile(50) /
                                            1000),
            static_cast<unsigned long long>(r.latency_ns.Percentile(99) /
                                            1000));
        char config[64];
        std::snprintf(config, sizeof(config), "%s/read%.0f",
                      std::string(IsolationLevelToString(isolation)).c_str(),
                      read_fraction * 100);
        Record("ssi_overhead", config, threads, r);
      }
    }
    std::printf("\nexpected shape: serializable throughput tracks SI within "
                "the marker/bookkeeping overhead at low thread counts; the "
                "gap grows with writer concurrency as commit decisions "
                "serialize on the tracker's commit mutex and dangerous-"
                "structure aborts appear in the abort-rate column.\n");
  }

  Banner("E17: WAL-shipping read replicas — primary writes, replica reads, "
         "replication lag",
         "a replica tails the primary's segmented WAL and serves SI "
         "snapshots pinned at its replay watermark: replica reads add "
         "capacity without taking any primary latch, writes on a replica "
         "fail fast with retryable ReplicaReadOnly, and the lag columns "
         "bound snapshot staleness in commits");

  {
    // Primary keeps every WAL segment for the duration of the bench so the
    // tailing replicas can never fall below a truncation cut.
    DatabaseOptions popts;
    popts.in_memory = true;
    popts.background_gc_interval_ms = 10;
    popts.wal_keep_segments = 1 << 20;
    auto opened = GraphDatabase::Open(popts);
    if (!opened.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   opened.status().ToString().c_str());
      std::abort();
    }
    auto primary = std::move(*opened);
    SocialGraphSpec spec;
    spec.people = Scaled(2000);
    auto graph = *BuildSocialGraph(*primary, spec);

    std::printf("%-9s %8s %14s %15s %18s %18s\n", "replicas", "writers",
                "primary-txn/s", "replica-read/s", "lag-p50(commits)",
                "lag-max(commits)");
    for (int replicas : {1, 2}) {
      std::vector<std::unique_ptr<GraphDatabase>> fleet;
      for (int i = 0; i < replicas; ++i) {
        DatabaseOptions ropts;
        ropts.in_memory = true;
        ropts.replica_of = primary->engine().store.wal().dir();
        ropts.replica_poll_interval_ms = 1;
        auto rep = GraphDatabase::Open(ropts);
        if (!rep.ok()) {
          std::fprintf(stderr, "replica open failed: %s\n",
                       rep.status().ToString().c_str());
          std::abort();
        }
        fleet.push_back(std::move(*rep));
        if (!fleet.back()->replica_applier()->WaitCaughtUp(30000)) {
          std::fprintf(
              stderr, "replica never caught up: %s\n",
              fleet.back()->replica_applier()->last_error().ToString().c_str());
          std::abort();
        }
      }

      // One writer hammers the primary while each replica serves one
      // reader; a sampler thread polls the watermark gap the whole time.
      std::vector<uint64_t> lags;
      std::atomic<bool> sampling{true};
      std::thread sampler([&] {
        while (sampling.load(std::memory_order_relaxed)) {
          const Timestamp head = primary->Stats().last_committed;
          for (auto& rep : fleet) {
            const Timestamp applied = rep->Stats().replica_applied_ts;
            lags.push_back(head > applied ? head - applied : 0);
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      });
      DriverResult writer_r;
      std::thread writer([&] {
        writer_r = RunCell(IsolationLevel::kSnapshotIsolation,
                           /*read_fraction=*/0.0, /*threads=*/1, duration_ms,
                           graph, *primary);
      });
      std::vector<DriverResult> reader_r(replicas);
      std::vector<std::thread> readers;
      for (int i = 0; i < replicas; ++i) {
        readers.emplace_back([&, i] {
          reader_r[i] = RunCell(IsolationLevel::kSnapshotIsolation,
                                /*read_fraction=*/1.0, /*threads=*/1,
                                duration_ms, graph, *fleet[i]);
        });
      }
      writer.join();
      for (auto& t : readers) t.join();
      sampling.store(false, std::memory_order_relaxed);
      sampler.join();

      std::sort(lags.begin(), lags.end());
      const uint64_t lag_p50 = lags.empty() ? 0 : lags[lags.size() / 2];
      const uint64_t lag_max = lags.empty() ? 0 : lags.back();
      double replica_reads = 0;
      for (const DriverResult& r : reader_r) replica_reads += r.Throughput();
      std::printf("%-9d %8d %14.0f %15.0f %18llu %18llu\n", replicas, 1,
                  writer_r.Throughput(), replica_reads,
                  static_cast<unsigned long long>(lag_p50),
                  static_cast<unsigned long long>(lag_max));

      char config[64];
      std::snprintf(config, sizeof(config), "primary_writes/replicas%d",
                    replicas);
      Record("replication", config, 1, writer_r);
      for (int i = 0; i < replicas; ++i) {
        std::snprintf(config, sizeof(config), "replica_reads/r%d_of%d", i,
                      replicas);
        Record("replication", config, 1, reader_r[i]);
      }
      // Lag cell: the p50/p99 columns carry commits-behind-primary (not
      // microseconds) — the config string says so.
      std::snprintf(config, sizeof(config),
                    "lag_commits_p50_p99/replicas%d", replicas);
      Cells().push_back({"replication", config, replicas, 0, 0, lag_p50,
                         lag_max});
    }
    std::printf("\nexpected shape: replica read throughput is additive "
                "capacity (it does not dent the primary writer column), and "
                "lag stays bounded at a few commits with a 1ms poll. On a "
                "single-core box all five threads timeshare one core, so "
                "judge absolute columns there loosely and the lag bound "
                "strictly.\n");
  }

  Banner("E18: sync-commit ack latency — flusher-owned fsync vs "
         "leader-inline fsync",
         "async group flush moves fsync off the commit path: the batch "
         "leader hands the flusher a target LSN and every participant "
         "parks on the flushed-LSN watermark, so the seat-holding leader "
         "stops serializing the next batch behind its own fsync — the ack "
         "p99 column is the contract, commits/s the sanity check");

  {
    std::printf("%-10s %8s %12s %10s %10s\n", "flush", "writers",
                "commits/s", "p50(us)", "p99(us)");
    for (const bool async_flush : {false, true}) {
      // A fresh on-disk database per mode: the inline baseline must not
      // inherit the async mode's pre-allocated segment chain.
      const std::string dir = MakeTempDir();
      if (dir.empty()) {
        std::printf("skipped: cannot create temp dir\n");
        continue;
      }
      DatabaseOptions options;
      options.in_memory = false;
      options.path = dir;
      options.sync_commits = true;
      options.background_gc_interval_ms = 10;
      options.wal_async_flush = async_flush;
      options.wal_preallocate = async_flush;
      auto opened = GraphDatabase::Open(options);
      if (!opened.ok()) {
        std::printf("skipped: %s\n", opened.status().ToString().c_str());
        continue;
      }
      auto db = std::move(*opened);
      auto nodes = BuildFlatNodes(*db, Scaled(4096));
      if (!nodes.ok()) {
        std::printf("skipped: %s\n", nodes.status().ToString().c_str());
        continue;
      }
      const char* mode = async_flush ? "async" : "inline";
      for (int threads : {1, 2, 4, 8}) {
        const DriverResult r = RunCommitScalingCell(*db, *nodes, threads,
                                                    duration_ms,
                                                    /*writes_per_txn=*/2);
        std::printf("%-10s %8d %12.0f %10llu %10llu\n", mode, threads,
                    r.Throughput(),
                    static_cast<unsigned long long>(
                        r.latency_ns.Percentile(50) / 1000),
                    static_cast<unsigned long long>(
                        r.latency_ns.Percentile(99) / 1000));
        char config[64];
        std::snprintf(config, sizeof(config), "%s/sync_ack", mode);
        Record("commit_io_flush", config, threads, r);
      }
    }
    std::printf("\nexpected shape (multi-core): async ack p99 at 4-8 "
                "writers sits below inline (waiters park on the watermark "
                "instead of queueing behind a seat-holding leader's fsync), "
                "at one writer the two modes are within noise (someone "
                "still pays every fsync). On a single-core box the flusher "
                "timeshares the core with the writers, so judge the "
                "columns loosely there; the stable signal is that async is "
                "never categorically worse.\n");
  }

  Banner("E19: network session front-end — in-process vs socket, "
         "latency & throughput",
         "the same read-modify-write transaction driven through the "
         "embedded API and through the wire protocol (one socket session "
         "per client thread, multiplexed over the server's epoll loop + "
         "2-worker pool): the column gap is the full cost of framing, "
         "CRCs, loopback TCP, and session scheduling — 4 round trips per "
         "transaction (begin/read/write/commit)");

  {
    DatabaseOptions options;  // In-memory: isolate the wire cost itself.
    options.background_gc_interval_ms = 10;
    auto opened = GraphDatabase::Open(options);
    if (!opened.ok()) {
      std::printf("skipped: %s\n", opened.status().ToString().c_str());
    } else {
      auto db = std::move(*opened);
      auto nodes = BuildFlatNodes(*db, Scaled(1024));
      if (!nodes.ok()) {
        std::printf("skipped: %s\n", nodes.status().ToString().c_str());
      } else {
        ServerOptions server_options;
        server_options.workers = 2;
        auto server_or = Server::Start(db.get(), server_options);
        if (!server_or.ok()) {
          std::printf("skipped: %s\n",
                      server_or.status().ToString().c_str());
        } else {
          auto server = std::move(*server_or);
          std::printf("%-12s %8s %12s %10s %10s %8s\n", "path", "clients",
                      "txn/s", "p50(us)", "p99(us)", "abort%");
          // Disjoint key per client thread: the contrast is transport
          // overhead, not lock contention.
          for (const bool over_wire : {false, true}) {
            std::vector<std::unique_ptr<Client>> clients;
            bool connected = true;
            for (int i = 0; i < 8; ++i) {
              clients.push_back(std::make_unique<Client>());
              if (over_wire &&
                  !clients.back()
                       ->Connect("127.0.0.1", server->port())
                       .ok()) {
                connected = false;
                break;
              }
            }
            if (!connected) {
              std::printf("skipped: client connect failed\n");
              continue;
            }
            for (int threads : {1, 2, 4, 8}) {
              const DriverResult r = RunForDuration(
                  threads, duration_ms, [&](int t, uint64_t op) -> Status {
                    const NodeId key =
                        (*nodes)[static_cast<size_t>(t) % nodes->size()];
                    const auto value =
                        PropertyValue(static_cast<int64_t>(op));
                    if (!over_wire) {
                      auto txn =
                          db->Begin(IsolationLevel::kSnapshotIsolation);
                      auto read = txn->GetNodeProperty(key, "v");
                      NEOSI_RETURN_IF_ERROR(read.status());
                      NEOSI_RETURN_IF_ERROR(
                          txn->SetNodeProperty(key, "v", value));
                      return txn->Commit();
                    }
                    Client& client = *clients[static_cast<size_t>(t)];
                    auto begin =
                        client.Begin(IsolationLevel::kSnapshotIsolation);
                    NEOSI_RETURN_IF_ERROR(begin.status());
                    auto read = client.GetNodeProperty(key, "v");
                    if (!read.ok()) {
                      (void)client.Rollback();
                      return read.status();
                    }
                    const Status write =
                        client.SetNodeProperty(key, "v", value);
                    if (!write.ok()) {
                      (void)client.Rollback();
                      return write;
                    }
                    return client.Commit().status();
                  });
              const char* path = over_wire ? "socket" : "in_process";
              std::printf("%-12s %8d %12.0f %10llu %10llu %7.1f%%\n", path,
                          threads, r.Throughput(),
                          static_cast<unsigned long long>(
                              r.latency_ns.Percentile(50) / 1000),
                          static_cast<unsigned long long>(
                              r.latency_ns.Percentile(99) / 1000),
                          100 * r.AbortRate());
              Record("wire_front_end", path, threads, r);
            }
          }
          std::printf(
              "\nexpected shape: socket p50 carries a fixed several-"
              "round-trip tax over in_process (loopback RTT x 4 plus "
              "epoll/worker handoffs), so socket throughput per client is "
              "RTT-bound and scales with CLIENT COUNT while in_process "
              "scales with cores. On a single-core box both columns "
              "timeshare one core and the wire tax shows up almost "
              "entirely in p50/p99 rather than txn/s.\n");
          server->Stop();
        }
      }
    }
  }

  MaybeWriteJson();
  return 0;
}
