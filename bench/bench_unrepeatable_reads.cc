// Experiment E1 — unrepeatable reads (paper §1).
//
// A reader transaction reads the same node property twice; concurrent
// writers update it between the reads. Under read committed the second read
// can differ (unrepeatable read); under snapshot isolation it never does.
//
// Output: one row per (isolation, writer count): fraction of reader
// transactions whose two reads disagreed.

#include <atomic>
#include <thread>

#include "bench/bench_common.h"
#include "common/random.h"

namespace neosi {
namespace bench {
namespace {

struct Cell {
  uint64_t rounds = 0;
  uint64_t anomalies = 0;
};

Cell RunCell(IsolationLevel isolation, int writers, uint64_t rounds) {
  auto db = OpenDb();
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    txn->Commit();
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> writer_threads;
  for (int w = 0; w < writers; ++w) {
    writer_threads.emplace_back([&, w] {
      Random rng(w + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        auto txn = db->Begin(IsolationLevel::kSnapshotIsolation);
        auto s = txn->SetNodeProperty(
            id, "v", PropertyValue(static_cast<int64_t>(rng.Next() >> 1)));
        if (s.ok()) (void)txn->Commit();
      }
    });
  }

  Cell cell;
  for (uint64_t r = 0; r < rounds; ++r) {
    auto txn = db->Begin(isolation);
    auto first = txn->GetNodeProperty(id, "v");
    if (!first.ok()) continue;
    std::this_thread::yield();  // Give writers a chance to commit.
    auto second = txn->GetNodeProperty(id, "v");
    if (!second.ok()) continue;
    ++cell.rounds;
    if (first->AsInt() != second->AsInt()) ++cell.anomalies;
    (void)txn->Commit();
  }
  stop.store(true);
  for (auto& t : writer_threads) t.join();
  // GC between cells keeps chains bounded.
  db->RunGc();
  return cell;
}

}  // namespace
}  // namespace bench
}  // namespace neosi

int main() {
  using namespace neosi;
  using namespace neosi::bench;

  Banner("E1: unrepeatable reads",
         "read committed admits unrepeatable reads; snapshot isolation "
         "eliminates them (anomaly rate -> 0)");

  const uint64_t rounds = Scaled(2000);
  std::printf("%-20s %8s %10s %12s %14s\n", "isolation", "writers", "rounds",
              "anomalies", "anomaly-rate");
  for (IsolationLevel isolation :
       {IsolationLevel::kReadCommitted, IsolationLevel::kSnapshotIsolation}) {
    for (int writers : {1, 2, 4}) {
      const auto cell = RunCell(isolation, writers, rounds);
      std::printf("%-20s %8d %10llu %12llu %13.4f%%\n",
                  std::string(IsolationLevelToString(isolation)).c_str(),
                  writers, static_cast<unsigned long long>(cell.rounds),
                  static_cast<unsigned long long>(cell.anomalies),
                  cell.rounds ? 100.0 * cell.anomalies / cell.rounds : 0.0);
    }
  }
  std::printf("\nexpected shape: ReadCommitted rates > 0 and grow with "
              "writers; SnapshotIsolation rates identically 0.\n");
  return 0;
}
