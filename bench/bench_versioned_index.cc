// Experiment E7 — versioned index scans (paper §4): index entries carry the
// commit timestamps of the associating / dissociating transactions, so scans
// filter dead entries until GC compacts them.
//
// N nodes carry a label; a fraction f is then deleted (entries become dead
// intervals pinned by a straggler snapshot). We measure label-scan latency
// with the dead entries present, then after compaction.

#include "bench/bench_common.h"

namespace neosi {
namespace bench {
namespace {

struct Row {
  double dead_fraction = 0;
  uint64_t live = 0;
  uint64_t entries_before = 0;
  double scan_dirty_us = 0;
  uint64_t entries_after = 0;
  double scan_compacted_us = 0;
};

Row RunRow(uint64_t n, double dead_fraction, uint64_t scans) {
  auto db = OpenDb();
  std::vector<NodeId> nodes;
  {
    auto txn = db->Begin();
    for (uint64_t i = 0; i < n; ++i) {
      nodes.push_back(*txn->CreateNode({"Tagged"}));
      if (i % 512 == 511) {
        (void)txn->Commit();
        txn = db->Begin();
      }
    }
    (void)txn->Commit();
  }
  // Straggler pins the dead entries until we let it go.
  auto straggler = db->Begin(IsolationLevel::kSnapshotIsolation);
  (void)straggler->GetNodesByLabel("Tagged");

  const uint64_t dead = static_cast<uint64_t>(n * dead_fraction);
  {
    auto txn = db->Begin();
    for (uint64_t i = 0; i < dead; ++i) {
      (void)txn->DeleteNode(nodes[i]);
      if (i % 512 == 511) {
        (void)txn->Commit();
        txn = db->Begin();
      }
    }
    (void)txn->Commit();
  }

  Row row;
  row.dead_fraction = dead_fraction;
  row.live = n - dead;
  row.entries_before = db->engine().label_index.Stats().entries_total;
  {
    auto reader = db->Begin();
    Timer t;
    for (uint64_t s = 0; s < scans; ++s) {
      auto hits = reader->GetNodesByLabel("Tagged");
      if (!hits.ok() || hits->size() != row.live) std::abort();
    }
    row.scan_dirty_us = t.Seconds() * 1e6 / static_cast<double>(scans);
  }

  (void)straggler->Commit();
  db->RunGc();
  row.entries_after = db->engine().label_index.Stats().entries_total;
  {
    auto reader = db->Begin();
    Timer t;
    for (uint64_t s = 0; s < scans; ++s) {
      auto hits = reader->GetNodesByLabel("Tagged");
      if (!hits.ok() || hits->size() != row.live) std::abort();
    }
    row.scan_compacted_us = t.Seconds() * 1e6 / static_cast<double>(scans);
  }
  return row;
}

}  // namespace
}  // namespace bench
}  // namespace neosi

int main() {
  using namespace neosi;
  using namespace neosi::bench;

  Banner("E7: versioned index scan vs dead-entry fraction",
         "scans stay correct with dead (timestamp-filtered) entries present "
         "and recover full speed once GC compacts them");

  const uint64_t n = Scaled(20000);
  const uint64_t scans = 50;
  std::printf("%-8s %8s %14s %12s %14s %14s\n", "dead-f", "live",
              "entries-dirty", "scan-dirty", "entries-gc'd", "scan-gc'd");
  for (double f : {0.0, 0.25, 0.5, 0.75, 0.9}) {
    const Row row = RunRow(n, f, scans);
    std::printf("%-8.2f %8llu %14llu %10.0fus %14llu %12.0fus\n",
                row.dead_fraction, static_cast<unsigned long long>(row.live),
                static_cast<unsigned long long>(row.entries_before),
                row.scan_dirty_us,
                static_cast<unsigned long long>(row.entries_after),
                row.scan_compacted_us);
  }
  std::printf("\nexpected shape: dirty scans keep the full entry count "
              "(live + dead) and slow down as dead fraction grows; after GC "
              "the entry count equals the live count and scans speed up.\n");
  return 0;
}
