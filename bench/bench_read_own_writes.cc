// Experiment E5 — read-your-own-writes via the enriched iterator (paper
// §3/§4): "versions of uncommitted data items should be kept private ... but
// they should be read by the transaction that wrote them".
//
// A transaction creates M nodes (+ edges to a hub) and scans them BEFORE
// committing: label scan, adjacency scan, full scan. We verify the counts
// (correctness) and report the pre-commit scan cost vs the same scan
// post-commit (the overhead of merging cached uncommitted versions).

#include "bench/bench_common.h"

namespace neosi {
namespace bench {
namespace {

struct Row {
  uint64_t m = 0;
  uint64_t pre_label_us = 0;
  uint64_t pre_adj_us = 0;
  uint64_t pre_all_us = 0;
  uint64_t post_label_us = 0;
  uint64_t post_adj_us = 0;
  uint64_t post_all_us = 0;
  bool correct = true;
};

Row RunRow(uint64_t m) {
  auto db = OpenDb();
  NodeId hub;
  {
    auto txn = db->Begin();
    hub = *txn->CreateNode({"Hub"});
    txn->Commit();
  }

  Row row;
  row.m = m;
  auto txn = db->Begin();
  for (uint64_t i = 0; i < m; ++i) {
    auto node = txn->CreateNode(
        {"Fresh"}, {{"i", PropertyValue(static_cast<int64_t>(i))}});
    if (!node.ok()) std::abort();
    if (!txn->CreateRelationship(hub, *node, "OWNS").ok()) std::abort();
  }

  {
    Timer t;
    auto scan = txn->GetNodesByLabel("Fresh");
    row.pre_label_us = t.Micros();
    row.correct &= scan.ok() && scan->size() == m;
  }
  {
    Timer t;
    auto adj = txn->GetRelationships(hub, Direction::kOutgoing);
    row.pre_adj_us = t.Micros();
    row.correct &= adj.ok() && adj->size() == m;
  }
  {
    Timer t;
    auto all = txn->AllNodes();
    row.pre_all_us = t.Micros();
    row.correct &= all.ok() && all->size() == m + 1;
  }
  if (!txn->Commit().ok()) std::abort();

  auto reader = db->Begin();
  {
    Timer t;
    auto scan = reader->GetNodesByLabel("Fresh");
    row.post_label_us = t.Micros();
    row.correct &= scan.ok() && scan->size() == m;
  }
  {
    Timer t;
    auto adj = reader->GetRelationships(hub, Direction::kOutgoing);
    row.post_adj_us = t.Micros();
    row.correct &= adj.ok() && adj->size() == m;
  }
  {
    Timer t;
    auto all = reader->AllNodes();
    row.post_all_us = t.Micros();
    row.correct &= all.ok() && all->size() == m + 1;
  }
  return row;
}

}  // namespace
}  // namespace bench
}  // namespace neosi

int main() {
  using namespace neosi;
  using namespace neosi::bench;

  Banner("E5: read-your-own-writes",
         "the enriched iterator merges the transaction's private cached "
         "versions into every scan, at cost comparable to committed scans");

  std::printf("%-8s %9s %14s %12s %12s %12s %12s %12s\n", "M", "correct",
              "pre-label(us)", "pre-adj(us)", "pre-all(us)", "post-label",
              "post-adj", "post-all");
  for (uint64_t m : {16, 64, 256, 1024, 4096}) {
    const Row row = RunRow(Scaled(m));
    std::printf("%-8llu %9s %14llu %12llu %12llu %12llu %12llu %12llu\n",
                static_cast<unsigned long long>(row.m),
                row.correct ? "yes" : "NO",
                static_cast<unsigned long long>(row.pre_label_us),
                static_cast<unsigned long long>(row.pre_adj_us),
                static_cast<unsigned long long>(row.pre_all_us),
                static_cast<unsigned long long>(row.post_label_us),
                static_cast<unsigned long long>(row.post_adj_us),
                static_cast<unsigned long long>(row.post_all_us));
  }
  std::printf("\nexpected shape: every row correct=yes (uncommitted writes "
              "visible to self, with exact counts); pre- and post-commit "
              "scan costs within the same order of magnitude.\n");
  return 0;
}
