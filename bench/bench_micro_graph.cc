// Micro benchmarks: public-API hot paths (CRUD, adjacency, scans).

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "graph/graph_database.h"
#include "workload/social_graph.h"

namespace neosi {
namespace {

std::unique_ptr<GraphDatabase> OpenDb() {
  DatabaseOptions options;
  options.in_memory = true;
  options.background_gc_interval_ms = 10;
  return std::move(*GraphDatabase::Open(options));
}

void BM_GetNode(benchmark::State& state) {
  auto db = OpenDb();
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({"Person"}, {{"name", PropertyValue("alice")},
                                       {"age", PropertyValue(int64_t{30})}});
    (void)txn->Commit();
  }
  auto txn = db->Begin();
  for (auto _ : state) {
    benchmark::DoNotOptimize(txn->GetNode(id));
  }
}
BENCHMARK(BM_GetNode);

void BM_Adjacency(benchmark::State& state) {
  auto db = OpenDb();
  NodeId hub;
  {
    auto txn = db->Begin();
    hub = *txn->CreateNode({});
    for (int64_t i = 0; i < state.range(0); ++i) {
      NodeId other = *txn->CreateNode({});
      (void)txn->CreateRelationship(hub, other, "E");
    }
    (void)txn->Commit();
  }
  auto txn = db->Begin();
  for (auto _ : state) {
    benchmark::DoNotOptimize(txn->GetRelationships(hub));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Adjacency)->Arg(4)->Arg(32)->Arg(256);

void BM_LabelScan(benchmark::State& state) {
  auto db = OpenDb();
  {
    auto txn = db->Begin();
    for (int64_t i = 0; i < state.range(0); ++i) {
      (void)txn->CreateNode({"Member"});
    }
    (void)txn->Commit();
  }
  auto txn = db->Begin();
  for (auto _ : state) {
    benchmark::DoNotOptimize(txn->GetNodesByLabel("Member"));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LabelScan)->Arg(100)->Arg(10000);

void BM_TwoHopTraversal(benchmark::State& state) {
  auto db = OpenDb();
  SocialGraphSpec spec;
  spec.people = 2000;
  auto graph = *BuildSocialGraph(*db, spec);
  auto txn = db->Begin();
  Random rng(1);
  for (auto _ : state) {
    const NodeId start = graph.people[rng.Uniform(graph.people.size())];
    auto neighbors = txn->GetNeighbors(start);
    if (!neighbors.ok()) std::abort();
    size_t total = 0;
    for (NodeId n : *neighbors) {
      auto second = txn->GetNeighbors(n);
      if (second.ok()) total += second->size();
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_TwoHopTraversal);

void BM_MixedTxn(benchmark::State& state) {
  auto db = OpenDb();
  SocialGraphSpec spec;
  spec.people = 1000;
  auto graph = *BuildSocialGraph(*db, spec);
  Random rng(7);
  for (auto _ : state) {
    auto txn = db->Begin();
    const NodeId person = graph.people[rng.Uniform(graph.people.size())];
    auto age = txn->GetNodeProperty(person, "age");
    if (age.ok()) {
      (void)txn->SetNodeProperty(person, "age",
                                 PropertyValue(age->AsInt() + 1));
    }
    benchmark::DoNotOptimize(txn->Commit());
  }
}
BENCHMARK(BM_MixedTxn);

}  // namespace
}  // namespace neosi

BENCHMARK_MAIN();
