// Micro benchmarks: record store and property chain hot paths.

#include <benchmark/benchmark.h>

#include "storage/graph_store.h"

namespace neosi {
namespace {

std::unique_ptr<GraphStore> MakeStore() {
  DatabaseOptions options;
  options.in_memory = true;
  auto store = std::make_unique<GraphStore>(options);
  if (!store->Open().ok()) std::abort();
  return store;
}

void BM_NodeRecordEncodeDecode(benchmark::State& state) {
  NodeRecord rec;
  rec.in_use = true;
  rec.first_rel = 42;
  rec.first_prop = 7;
  rec.commit_ts = 100;
  char buf[NodeRecord::kSize];
  for (auto _ : state) {
    rec.EncodeTo(buf);
    NodeRecord out;
    benchmark::DoNotOptimize(
        NodeRecord::DecodeFrom(Slice(buf, sizeof buf), &out));
  }
}
BENCHMARK(BM_NodeRecordEncodeDecode);

void BM_PersistNewNode(benchmark::State& state) {
  auto store = MakeStore();
  PropertyMap props{{1, PropertyValue(int64_t{5})},
                    {2, PropertyValue("name-string")}};
  uint64_t i = 0;
  for (auto _ : state) {
    const NodeId id = *store->AllocateNodeId();
    benchmark::DoNotOptimize(store->PersistNewNode(id, {1}, props, ++i));
  }
}
BENCHMARK(BM_PersistNewNode);

void BM_ReadNodeState(benchmark::State& state) {
  auto store = MakeStore();
  const NodeId id = *store->AllocateNodeId();
  PropertyMap props{{1, PropertyValue(int64_t{5})},
                    {2, PropertyValue("name-string")}};
  if (!store->PersistNewNode(id, {1, 2}, props, 1).ok()) std::abort();
  for (auto _ : state) {
    NodeState out;
    benchmark::DoNotOptimize(store->ReadNodeState(id, &out));
  }
}
BENCHMARK(BM_ReadNodeState);

void BM_RelChainScan(benchmark::State& state) {
  auto store = MakeStore();
  const NodeId a = *store->AllocateNodeId();
  const NodeId b = *store->AllocateNodeId();
  if (!store->PersistNewNode(a, {}, {}, 1).ok()) std::abort();
  if (!store->PersistNewNode(b, {}, {}, 1).ok()) std::abort();
  for (int64_t i = 0; i < state.range(0); ++i) {
    const RelId r = *store->AllocateRelId();
    if (!store->PersistNewRel(r, a, b, 0, {}, 2).ok()) std::abort();
  }
  std::vector<RelId> chain;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store->RelChainOf(a, &chain));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RelChainScan)->Arg(8)->Arg(64)->Arg(512);

void BM_WalAppend(benchmark::State& state) {
  auto store = MakeStore();
  WalRecord record;
  record.txn_id = 1;
  record.commit_ts = 1;
  record.ops.push_back(
      WalOp::CreateNode(1, {1}, {{1, PropertyValue(int64_t{5})}}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(store->wal().Append(record));
  }
}
BENCHMARK(BM_WalAppend);

void BM_PropertyChainRoundTrip(benchmark::State& state) {
  auto store = MakeStore();
  const NodeId id = *store->AllocateNodeId();
  PropertyMap props;
  for (int64_t k = 0; k < state.range(0); ++k) {
    props[static_cast<PropertyKeyId>(k)] = PropertyValue(k);
  }
  uint64_t ts = 0;
  if (!store->PersistNewNode(id, {}, props, ++ts).ok()) std::abort();
  for (auto _ : state) {
    benchmark::DoNotOptimize(store->PersistNodeState(id, {}, props, ++ts));
  }
}
BENCHMARK(BM_PropertyChainRoundTrip)->Arg(1)->Arg(8)->Arg(32);

}  // namespace
}  // namespace neosi

BENCHMARK_MAIN();
