// Experiment E2 — phantom reads (paper §1).
//
// A reader transaction evaluates the same predicate twice: (a) a label scan
// and (b) a property range scan. Concurrent transactions insert matching
// nodes. Under read committed the result set grows mid-transaction
// (phantoms); under snapshot isolation it is stable.

#include <atomic>
#include <thread>

#include "bench/bench_common.h"
#include "common/random.h"

namespace neosi {
namespace bench {
namespace {

struct Cell {
  uint64_t rounds = 0;
  uint64_t label_phantoms = 0;
  uint64_t range_phantoms = 0;
};

Cell RunCell(IsolationLevel isolation, int inserters, uint64_t rounds) {
  auto db = OpenDb(ConflictPolicy::kFirstUpdaterWinsWait,
                   /*gc_interval_ms=*/10, /*gc_backlog_threshold=*/512);
  {
    auto txn = db->Begin();
    for (int i = 0; i < 16; ++i) {
      (void)txn->CreateNode({"Member"},
                            {{"score", PropertyValue(int64_t{50})}});
    }
    txn->Commit();
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < inserters; ++w) {
    threads.emplace_back([&, w] {
      Random rng(w * 13 + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        auto txn = db->Begin(IsolationLevel::kSnapshotIsolation);
        auto node = txn->CreateNode(
            {"Member"},
            {{"score",
              PropertyValue(static_cast<int64_t>(rng.Uniform(100)))}});
        if (node.ok()) (void)txn->Commit();
      }
    });
  }

  Cell cell;
  for (uint64_t r = 0; r < rounds; ++r) {
    auto txn = db->Begin(isolation);
    auto by_label_1 = txn->GetNodesByLabel("Member");
    auto by_range_1 = txn->GetNodesByPropertyRange(
        "score", PropertyValue(int64_t{25}), PropertyValue(int64_t{75}));
    if (!by_label_1.ok() || !by_range_1.ok()) continue;
    std::this_thread::yield();
    auto by_label_2 = txn->GetNodesByLabel("Member");
    auto by_range_2 = txn->GetNodesByPropertyRange(
        "score", PropertyValue(int64_t{25}), PropertyValue(int64_t{75}));
    if (!by_label_2.ok() || !by_range_2.ok()) continue;
    ++cell.rounds;
    if (by_label_1->size() != by_label_2->size()) ++cell.label_phantoms;
    if (by_range_1->size() != by_range_2->size()) ++cell.range_phantoms;
    (void)txn->Commit();
  }
  stop.store(true);
  for (auto& t : threads) t.join();
  return cell;
}

}  // namespace
}  // namespace bench
}  // namespace neosi

int main() {
  using namespace neosi;
  using namespace neosi::bench;

  Banner("E2: phantom reads",
         "predicate scans repeated inside one transaction observe phantom "
         "rows under read committed, never under snapshot isolation");

  const uint64_t rounds = Scaled(500);
  std::printf("%-20s %10s %8s %15s %15s\n", "isolation", "inserters",
              "rounds", "label-phantoms", "range-phantoms");
  for (IsolationLevel isolation :
       {IsolationLevel::kReadCommitted, IsolationLevel::kSnapshotIsolation}) {
    for (int inserters : {1, 2, 4}) {
      const auto cell = RunCell(isolation, inserters, rounds);
      std::printf("%-20s %10d %8llu %15llu %15llu\n",
                  std::string(IsolationLevelToString(isolation)).c_str(),
                  inserters, static_cast<unsigned long long>(cell.rounds),
                  static_cast<unsigned long long>(cell.label_phantoms),
                  static_cast<unsigned long long>(cell.range_phantoms));
    }
  }
  std::printf("\nexpected shape: ReadCommitted phantom counts > 0; "
              "SnapshotIsolation identically 0 for both predicates.\n");
  return 0;
}
