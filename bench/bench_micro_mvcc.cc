// Micro benchmarks: version chain visibility and GC list operations.

#include <benchmark/benchmark.h>

#include "mvcc/gc_list.h"
#include "mvcc/version_chain.h"

namespace neosi {
namespace {

void BM_ChainInstallCommit(benchmark::State& state) {
  VersionChain chain;
  TxnId txn = 1;
  Timestamp ts = 1;
  for (auto _ : state) {
    auto v = chain.InstallUncommitted(txn, VersionData{});
    benchmark::DoNotOptimize(chain.CommitHead(txn, ts));
    ++txn;
    ++ts;
    if (ts % 1024 == 0) chain.PruneSupersededUpTo(ts);  // Keep it bounded.
  }
}
BENCHMARK(BM_ChainInstallCommit);

void BM_VisibleHeadHit(benchmark::State& state) {
  VersionChain chain;
  for (Timestamp ts = 1; ts <= static_cast<Timestamp>(state.range(0)); ++ts) {
    (void)chain.InstallUncommitted(ts, VersionData{});
    (void)chain.CommitHead(ts, ts * 10);
  }
  const Timestamp fresh = state.range(0) * 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain.Visible(fresh, kNoTxn));
  }
}
BENCHMARK(BM_VisibleHeadHit)->Arg(1)->Arg(64)->Arg(1024);

void BM_VisibleTailWalk(benchmark::State& state) {
  VersionChain chain;
  for (Timestamp ts = 1; ts <= static_cast<Timestamp>(state.range(0)); ++ts) {
    (void)chain.InstallUncommitted(ts, VersionData{});
    (void)chain.CommitHead(ts, ts * 10);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain.Visible(10, kNoTxn));  // Oldest version.
  }
}
BENCHMARK(BM_VisibleTailWalk)->Arg(1)->Arg(64)->Arg(1024);

void BM_GcListAppendPop(benchmark::State& state) {
  GcList list;
  Timestamp ts = 1;
  for (auto _ : state) {
    GcEntry entry;
    entry.key = EntityKey::Node(ts);
    entry.version = std::make_shared<Version>();
    entry.obsolete_since = ts;
    list.Append(std::move(entry));
    if (ts % 64 == 0) {
      benchmark::DoNotOptimize(list.PopReclaimable(ts));
    }
    ++ts;
  }
}
BENCHMARK(BM_GcListAppendPop);

void BM_PruneSuperseded(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    VersionChain chain;
    for (Timestamp ts = 1; ts <= static_cast<Timestamp>(state.range(0));
         ++ts) {
      (void)chain.InstallUncommitted(ts, VersionData{});
      (void)chain.CommitHead(ts, ts);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(chain.PruneSupersededUpTo(kMaxTimestamp - 1));
  }
  state.SetItemsProcessed(state.iterations() * (state.range(0) - 1));
}
BENCHMARK(BM_PruneSuperseded)->Arg(64)->Arg(1024);

}  // namespace
}  // namespace neosi

BENCHMARK_MAIN();
