// Experiment E9 — "only writing to the persistent data store the most
// recent committed version of each data item. The other versions are kept
// in memory." (paper §4)
//
// N entities receive U updates each while a straggler snapshot pins all old
// versions. We report what the store holds (newest committed versions
// only), what memory holds (the full version lists), and what a naive
// persist-every-version design would have written — plus checkpoint cost.

#include "bench/bench_common.h"

namespace neosi {
namespace bench {
namespace {

struct Row {
  uint64_t updates_per_entity = 0;
  uint64_t store_bytes = 0;
  uint64_t wal_bytes = 0;
  uint64_t memory_versions = 0;
  uint64_t memory_bytes = 0;
  uint64_t naive_store_bytes = 0;  // If every version were persisted.
  double checkpoint_ms = 0;
};

Row RunRow(uint64_t n, uint64_t updates) {
  auto db = OpenDb();
  std::vector<NodeId> nodes;
  {
    auto txn = db->Begin();
    for (uint64_t i = 0; i < n; ++i) {
      nodes.push_back(*txn->CreateNode(
          {}, {{"v", PropertyValue(int64_t{0})},
               {"pad", PropertyValue(std::string(32, 'x'))}}));
      if (i % 1024 == 1023) {
        (void)txn->Commit();
        txn = db->Begin();
      }
    }
    (void)txn->Commit();
  }
  // Straggler pins every superseded version in memory.
  auto straggler = db->Begin(IsolationLevel::kSnapshotIsolation);
  (void)straggler->GetNodeProperty(nodes[0], "v");

  for (uint64_t u = 0; u < updates; ++u) {
    auto txn = db->Begin();
    for (uint64_t i = 0; i < n; i += 97) {  // Update a spread of entities.
      (void)txn->SetNodeProperty(nodes[i], "v",
                                 PropertyValue(static_cast<int64_t>(u)));
    }
    (void)txn->Commit();
  }

  Row row;
  row.updates_per_entity = updates;
  GraphStoreStats store = db->engine().store.Stats();
  row.store_bytes = store.nodes.bytes + store.props.bytes +
                    store.strings.bytes + store.label_dyn.bytes;
  row.wal_bytes = store.wal_bytes;
  ObjectCacheStats cache = db->engine().cache->Stats();
  row.memory_versions = cache.resident_versions;
  row.memory_bytes = cache.approx_bytes;
  // A naive design persists every version: approximate its extra footprint
  // by the in-memory size of the superseded versions.
  row.naive_store_bytes =
      row.store_bytes +
      (cache.resident_versions - cache.resident_nodes) *
          (NodeRecord::kSize + 2 * PropertyRecord::kSize + 64);

  Timer t;
  if (!db->Checkpoint().ok()) std::abort();
  row.checkpoint_ms = t.Seconds() * 1e3;
  return row;
}

}  // namespace
}  // namespace bench
}  // namespace neosi

int main() {
  using namespace neosi;
  using namespace neosi::bench;

  Banner("E9: persist newest-committed-version only",
         "the store never grows with version count; superseded versions "
         "live in the object cache until GC, so multi-versioning adds no "
         "write amplification to the store files");

  const uint64_t n = Scaled(20000);
  std::printf("%-10s %12s %12s %12s %12s %14s %12s\n", "updates",
              "store(KB)", "wal(KB)", "mem-vers", "mem(KB)", "naive(KB)",
              "ckpt(ms)");
  for (uint64_t updates : {0, 4, 16, 64}) {
    const Row row = RunRow(n, updates);
    std::printf("%-10llu %12llu %12llu %12llu %12llu %14llu %12.2f\n",
                static_cast<unsigned long long>(row.updates_per_entity),
                static_cast<unsigned long long>(row.store_bytes / 1024),
                static_cast<unsigned long long>(row.wal_bytes / 1024),
                static_cast<unsigned long long>(row.memory_versions),
                static_cast<unsigned long long>(row.memory_bytes / 1024),
                static_cast<unsigned long long>(row.naive_store_bytes / 1024),
                row.checkpoint_ms);
  }
  std::printf("\nexpected shape: store(KB) roughly flat across update "
              "counts (newest version only); mem-vers and naive(KB) grow "
              "with updates; wal truncated to 0 by each checkpoint before "
              "the next row.\n");
  return 0;
}
