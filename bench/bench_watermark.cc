// Experiment E12 — the watermark rule (paper §3): "if the oldest transaction
// has start timestamp 100 and a data item has versions with commit
// timestamps 40, 56 and 90, the first two will never be read by any active
// transaction" — plus the cost of stragglers: how garbage accumulates while
// an old snapshot stays open and how quickly it drains once it closes.
//
// The straggler sweep runs in both read-path modes: "latched"
// (latch_free_reads=false) frees pruned versions inside the GC pass;
// "epoch" (the default) retires them into the epoch limbo and frees them on
// the drain tick, so the drain column splits into unlink time and the
// deferred free, with the epoch gauges showing the retire/free ledger.

#include <thread>

#include "bench/bench_common.h"

namespace neosi {
namespace bench {
namespace {

void PaperExample() {
  auto db = OpenDb();
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{40})}});
    (void)txn->Commit();
  }
  for (int64_t v : {56, 90}) {
    auto txn = db->Begin();
    (void)txn->SetNodeProperty(id, "v", PropertyValue(v));
    (void)txn->Commit();
  }
  auto oldest_active = db->Begin(IsolationLevel::kSnapshotIsolation);
  const Timestamp watermark = db->Watermark();
  GcStats stats = db->RunGc();
  std::printf("versions {40, 56, 90}; oldest active start ts = %llu\n",
              static_cast<unsigned long long>(oldest_active->start_ts()));
  std::printf("watermark = %llu, reclaimed = %llu (the '40' and '56' "
              "versions), chain length now = %zu\n",
              static_cast<unsigned long long>(watermark),
              static_cast<unsigned long long>(stats.versions_pruned),
              db->engine().cache->PeekNode(id)->chain.Length());
  std::printf("oldest active still reads: %lld (the '90' version)\n\n",
              static_cast<long long>(
                  oldest_active->GetNodeProperty(id, "v")->AsInt()));
}

struct Row {
  uint64_t straggler_updates = 0;
  uint64_t queued_during = 0;
  uint64_t reclaimed_during = 0;
  uint64_t reclaimed_after = 0;
  double drain_ms = 0;
  uint64_t epoch_retired = 0;
  uint64_t epoch_freed = 0;
};

Row StragglerRow(uint64_t updates, bool latch_free) {
  DatabaseOptions options;
  options.in_memory = true;
  options.conflict_policy = ConflictPolicy::kFirstUpdaterWinsWait;
  options.background_gc_interval_ms = 0;  // manual passes only
  options.latch_free_reads = latch_free;
  auto opened = GraphDatabase::Open(options);
  if (!opened.ok()) std::abort();
  auto db = std::move(*opened);
  NodeId id;
  {
    auto txn = db->Begin();
    id = *txn->CreateNode({}, {{"v", PropertyValue(int64_t{0})}});
    (void)txn->Commit();
  }
  Row row;
  row.straggler_updates = updates;
  auto straggler = db->Begin(IsolationLevel::kSnapshotIsolation);
  (void)straggler->GetNodeProperty(id, "v");
  for (uint64_t u = 0; u < updates; ++u) {
    auto txn = db->Begin();
    (void)txn->SetNodeProperty(id, "v",
                               PropertyValue(static_cast<int64_t>(u)));
    (void)txn->Commit();
  }
  // GC with the straggler open: nothing is reclaimable.
  GcStats during = db->RunGc();
  row.queued_during = db->engine().gc_list.size();
  row.reclaimed_during = during.versions_pruned;
  // Straggler closes: one pass drains the backlog. In epoch mode the pass
  // unlinks + retires, and its built-in drain tick frees the PREVIOUS
  // cycle's retirees — a second pass observes this cycle's frees.
  (void)straggler->Commit();
  Timer t;
  GcStats after = db->RunGc();
  (void)db->RunGc();  // epoch mode: the follow-up drain frees this batch
  row.drain_ms = t.Seconds() * 1e3;
  row.reclaimed_after = after.versions_pruned;
  const DatabaseStats stats = db->Stats();
  row.epoch_retired = stats.epoch_retired;
  row.epoch_freed = stats.epoch_freed;
  return row;
}

}  // namespace
}  // namespace bench
}  // namespace neosi

int main() {
  using namespace neosi;
  using namespace neosi::bench;

  Banner("E12: the GC watermark (latched vs epoch reclamation)",
         "versions older than what the oldest active transaction can read "
         "are dead (paper's {40,56,90}/100 example); stragglers pin garbage "
         "and one O(garbage) pass drains it when they finish — in epoch "
         "mode the unlink retires into limbo and the free lands one drain "
         "tick later");

  PaperExample();

  std::printf("%-8s %-18s %14s %16s %16s %10s %10s %10s\n", "mode",
              "straggler-updates", "queued-during", "reclaimed-during",
              "reclaimed-after", "drain(ms)", "retired", "freed");
  for (const bool latch_free : {false, true}) {
    const char* mode = latch_free ? "epoch" : "latched";
    for (uint64_t updates : {100, 1000, 10000}) {
      const Row row = StragglerRow(Scaled(updates), latch_free);
      std::printf("%-8s %-18llu %14llu %16llu %16llu %10.2f %10llu %10llu\n",
                  mode,
                  static_cast<unsigned long long>(row.straggler_updates),
                  static_cast<unsigned long long>(row.queued_during),
                  static_cast<unsigned long long>(row.reclaimed_during),
                  static_cast<unsigned long long>(row.reclaimed_after),
                  row.drain_ms,
                  static_cast<unsigned long long>(row.epoch_retired),
                  static_cast<unsigned long long>(row.epoch_freed));
    }
  }
  std::printf("\nexpected shape: reclaimed-during = 0 (straggler pins "
              "everything), queued-during = update count, reclaimed-after = "
              "update count, drain time proportional to the backlog, in "
              "both modes. Latched rows show retired = freed = 0 (pruned "
              "versions free inside the pass); epoch rows show retired = "
              "freed = 1 — the whole severed suffix retires as ONE limbo "
              "entry regardless of backlog size — with comparable total "
              "drain time: deferral shifts WHEN memory returns, not how "
              "much work the drain does.\n");
  return 0;
}
