// Quickstart: open a database, write a tiny graph, query it, and see what
// snapshot isolation gives you over read committed.
//
//   $ ./quickstart

#include <cstdio>

#include "graph/graph_database.h"

using namespace neosi;

int main() {
  // 1. Open an in-memory database (set options.path + in_memory=false for a
  //    durable one).
  DatabaseOptions options;
  options.in_memory = true;
  auto db_or = GraphDatabase::Open(options);
  if (!db_or.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 db_or.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(*db_or);

  // 2. Create a little graph in one transaction.
  NodeId alice, bob;
  {
    auto txn = db->Begin();
    alice = *txn->CreateNode({"Person"}, {{"name", PropertyValue("alice")},
                                          {"age", PropertyValue(int64_t{34})}});
    bob = *txn->CreateNode({"Person"}, {{"name", PropertyValue("bob")},
                                        {"age", PropertyValue(int64_t{29})}});
    auto knows = txn->CreateRelationship(
        alice, bob, "KNOWS", {{"since", PropertyValue(int64_t{2019})}});
    if (!knows.ok()) {
      std::fprintf(stderr, "create failed: %s\n",
                   knows.status().ToString().c_str());
      return 1;
    }
    Status s = txn->Commit();
    if (!s.ok()) {
      std::fprintf(stderr, "commit failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  std::printf("created alice=%llu bob=%llu\n",
              (unsigned long long)alice, (unsigned long long)bob);

  // 3. Query it.
  {
    auto txn = db->Begin();
    auto people = txn->GetNodesByLabel("Person");
    std::printf("Person nodes: %zu\n", people->size());
    for (NodeId id : *people) {
      auto view = txn->GetNode(id);
      std::printf("  node %llu name=%s age=%s\n", (unsigned long long)id,
                  view->props.at("name").ToString().c_str(),
                  view->props.at("age").ToString().c_str());
    }
    auto rels = txn->GetRelationships(alice, Direction::kOutgoing);
    for (RelId r : *rels) {
      auto view = txn->GetRelationship(r);
      std::printf("  %llu -[%s since %s]-> %llu\n",
                  (unsigned long long)view->src, view->type.c_str(),
                  view->props.at("since").ToString().c_str(),
                  (unsigned long long)view->dst);
    }
  }

  // 4. Snapshot isolation in one picture: a reader's snapshot is immune to
  //    concurrent commits.
  {
    auto reader = db->Begin(IsolationLevel::kSnapshotIsolation);
    auto before = reader->GetNodeProperty(alice, "age");

    auto writer = db->Begin();
    (void)writer->SetNodeProperty(alice, "age", PropertyValue(int64_t{35}));
    (void)writer->Commit();

    auto after = reader->GetNodeProperty(alice, "age");
    std::printf("snapshot reader saw age=%lld before and age=%lld after a "
                "concurrent commit (unchanged!)\n",
                (long long)before->AsInt(), (long long)after->AsInt());

    auto fresh = db->Begin();
    std::printf("a fresh transaction sees age=%lld\n",
                (long long)fresh->GetNodeProperty(alice, "age")->AsInt());
  }

  // 5. Write-write conflicts abort the later updater (first-updater-wins).
  {
    auto t1 = db->Begin();
    auto t2 = db->Begin();
    (void)t1->SetNodeProperty(bob, "age", PropertyValue(int64_t{30}));
    (void)t1->Commit();
    Status s = t2->SetNodeProperty(bob, "age", PropertyValue(int64_t{31}));
    std::printf("concurrent second updater got: %s (retryable=%s)\n",
                s.ToString().c_str(), s.IsRetryable() ? "yes" : "no");
  }

  // 6. Old versions are garbage-collected once no snapshot needs them.
  GcStats gc = db->RunGc();
  std::printf("gc pass: pruned %llu superseded version(s)\n",
              (unsigned long long)gc.versions_pruned);
  return 0;
}
