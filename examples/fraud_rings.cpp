// Fraud-ring detection example: declarative pattern matching over a
// payments graph, running inside one snapshot.
//
// Pattern: two accounts sharing a device AND linked by a large transfer —
// a classic first-pass fraud heuristic. The query API compiles to index
// scans + expansions; under snapshot isolation the multi-hop match is
// evaluated against one consistent graph even while payments stream in.
//
//   $ ./fraud_rings

#include <atomic>
#include <cstdio>
#include <thread>

#include "common/random.h"
#include "graph/graph_database.h"
#include "graph/query.h"

using namespace neosi;

int main() {
  DatabaseOptions options;
  options.in_memory = true;
  options.background_gc_interval_ms = 10;  // GC runs as a daemon.
  auto db = std::move(*GraphDatabase::Open(options));

  // Accounts and devices.
  constexpr int kAccounts = 500;
  constexpr int kDevices = 120;
  std::vector<NodeId> accounts, devices;
  {
    auto txn = db->Begin();
    for (int i = 0; i < kAccounts; ++i) {
      accounts.push_back(*txn->CreateNode(
          {"Account"},
          {{"id", PropertyValue(static_cast<int64_t>(i))},
           {"risk", PropertyValue(static_cast<int64_t>(i % 100))}}));
    }
    for (int i = 0; i < kDevices; ++i) {
      devices.push_back(*txn->CreateNode(
          {"Device"}, {{"id", PropertyValue(static_cast<int64_t>(i))}}));
    }
    (void)txn->Commit();
  }
  // Device logins: accounts sharing devices.
  Random rng(2026);
  {
    auto txn = db->Begin();
    for (int i = 0; i < kAccounts; ++i) {
      const int logins = 1 + rng.Uniform(2);
      for (int l = 0; l < logins; ++l) {
        (void)txn->CreateRelationship(
            accounts[i], devices[rng.Uniform(kDevices)], "LOGGED_IN_FROM");
      }
    }
    (void)txn->Commit();
  }
  // A planted ring: three accounts on one device moving big money.
  {
    auto txn = db->Begin();
    const NodeId shared_device = devices[0];
    NodeId ring[3] = {accounts[10], accounts[20], accounts[30]};
    for (NodeId member : ring) {
      (void)txn->CreateRelationship(member, shared_device, "LOGGED_IN_FROM");
    }
    (void)txn->CreateRelationship(
        ring[0], ring[1], "TRANSFER",
        {{"amount", PropertyValue(int64_t{950000})}});
    (void)txn->CreateRelationship(
        ring[1], ring[2], "TRANSFER",
        {{"amount", PropertyValue(int64_t{870000})}});
    (void)txn->Commit();
  }

  // Payment stream keeps committing while we hunt.
  std::atomic<bool> stop{false};
  std::thread payments([&] {
    Random prng(7);
    while (!stop.load()) {
      auto txn = db->Begin();
      (void)txn->CreateRelationship(
          accounts[prng.Uniform(kAccounts)], accounts[prng.Uniform(kAccounts)],
          "TRANSFER",
          {{"amount",
            PropertyValue(static_cast<int64_t>(prng.Uniform(5000)))}});
      (void)txn->Commit();
    }
  });

  // The hunt, inside one snapshot:
  //   MATCH (a:Account)-[:TRANSFER {amount > 500000}]->(b:Account),
  //         (a)-[:LOGGED_IN_FROM]->(d:Device)<-[:LOGGED_IN_FROM]-(b)
  // expressed as a linear pattern a -TRANSFER-> b -LOGGED_IN_FROM-> d
  // <-LOGGED_IN_FROM- a', then verified a' == a via the row bindings.
  auto txn = db->Begin(IsolationLevel::kSnapshotIsolation);
  uint64_t suspicious_transfers = 0, ring_hits = 0;

  // Step 1: find the big transfers with the relationship-property index.
  auto big = txn->GetRelsByProperty("amount", PropertyValue(int64_t{950000}));
  auto big2 = txn->GetRelsByProperty("amount", PropertyValue(int64_t{870000}));
  suspicious_transfers = big->size() + big2->size();

  // Step 2: shared-device pattern via the query API.
  auto rows = Query::Match(NodePattern("Account"))
                  .Expand(Expansion("TRANSFER", Direction::kOutgoing,
                                    NodePattern("Account")))
                  .Expand(Expansion("LOGGED_IN_FROM", Direction::kOutgoing,
                                    NodePattern("Device")))
                  .Expand(Expansion("LOGGED_IN_FROM", Direction::kIncoming,
                                    NodePattern("Account")))
                  .AllowRevisit(true)
                  .Execute(*txn);
  if (!rows.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 rows.status().ToString().c_str());
    return 1;
  }
  for (const QueryRow& row : *rows) {
    // row = [a, b, d, a']; a ring needs a' == a and a real transfer a->b
    // with a big amount (re-check amount via the rel property index hits).
    if (row[3] != row[0]) continue;
    // Both endpoints of the transfer share device d.
    auto transfer_big = [&](NodeId from, NodeId to) {
      auto rels = txn->GetRelationships(from, Direction::kOutgoing,
                                        std::string("TRANSFER"));
      if (!rels.ok()) return false;
      for (RelId r : *rels) {
        auto view = txn->GetRelationship(r);
        if (!view.ok() || view->dst != to) continue;
        auto amount = view->props.find("amount");
        if (amount != view->props.end() &&
            amount->second.AsInt() > 500000) {
          return true;
        }
      }
      return false;
    };
    if (transfer_big(row[0], row[1])) ++ring_hits;
  }
  stop.store(true);
  payments.join();

  std::printf("suspicious (>500k) transfers found via rel-property index: "
              "%llu\n",
              (unsigned long long)suspicious_transfers);
  std::printf("shared-device ring patterns matched: %llu (planted: 2)\n",
              (unsigned long long)ring_hits);
  std::printf("daemon GC passes while hunting: %llu (versions pruned: "
              "%llu)\n",
              (unsigned long long)db->gc_daemon()->passes(),
              (unsigned long long)db->gc_daemon()->versions_pruned());
  return ring_hits >= 2 ? 0 : 1;
}
