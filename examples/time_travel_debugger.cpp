// "Time-travel" example: long-lived snapshots as consistent views.
//
// An operations dashboard holds a snapshot open while the fleet state keeps
// changing; the dashboard's drill-down queries all answer from the same
// instant. Meanwhile the GC watermark honours the open snapshot (§3) and
// reclaims everything the moment it closes.
//
//   $ ./time_travel_debugger

#include <cstdio>

#include "graph/graph_database.h"

using namespace neosi;

int main() {
  DatabaseOptions options;
  options.in_memory = true;
  options.background_gc_interval_ms = 0;  // Manual GC: effect is visible.
  auto db = std::move(*GraphDatabase::Open(options));

  // Fleet: services with a status and DEPENDS_ON edges.
  std::vector<NodeId> services;
  {
    auto txn = db->Begin();
    const char* names[] = {"gateway", "auth",  "billing",
                           "search",  "index", "storage"};
    for (const char* name : names) {
      services.push_back(*txn->CreateNode(
          {"Service"}, {{"name", PropertyValue(name)},
                        {"status", PropertyValue("healthy")}}));
    }
    (void)txn->CreateRelationship(services[0], services[1], "DEPENDS_ON");
    (void)txn->CreateRelationship(services[0], services[3], "DEPENDS_ON");
    (void)txn->CreateRelationship(services[3], services[4], "DEPENDS_ON");
    (void)txn->CreateRelationship(services[4], services[5], "DEPENDS_ON");
    (void)txn->CreateRelationship(services[2], services[1], "DEPENDS_ON");
    (void)txn->Commit();
  }

  // The dashboard opens its consistent view NOW.
  auto dashboard = db->Begin(IsolationLevel::kSnapshotIsolation);
  std::printf("dashboard snapshot opened at ts=%llu\n",
              (unsigned long long)dashboard->start_ts());

  // ... while the world changes: an incident cascades.
  {
    auto incident = db->Begin();
    (void)incident->SetNodeProperty(services[5], "status",
                                    PropertyValue("down"));
    (void)incident->SetNodeProperty(services[4], "status",
                                    PropertyValue("degraded"));
    (void)incident->Commit();
  }
  {
    auto cascade = db->Begin();
    (void)cascade->SetNodeProperty(services[3], "status",
                                   PropertyValue("degraded"));
    (void)cascade->Commit();
  }
  // A new service is deployed mid-incident.
  {
    auto deploy = db->Begin();
    auto cache = deploy->CreateNode({"Service"},
                                    {{"name", PropertyValue("cache")},
                                     {"status", PropertyValue("healthy")}});
    (void)deploy->CreateRelationship(services[3], *cache, "DEPENDS_ON");
    (void)deploy->Commit();
  }

  // Dashboard drill-down: every query answers from the pre-incident world.
  std::printf("\ndashboard view (pre-incident snapshot):\n");
  auto dashboard_services = dashboard->GetNodesByLabel("Service");
  for (NodeId service : *dashboard_services) {
    auto view = dashboard->GetNode(service);
    std::printf("  %-8s %s\n", view->props.at("name").AsString().c_str(),
                view->props.at("status").AsString().c_str());
  }
  std::printf("  (the 'cache' service and every status change are "
              "invisible: they committed after ts=%llu)\n",
              (unsigned long long)dashboard->start_ts());

  // Live view for contrast.
  {
    auto live = db->Begin();
    std::printf("\nlive view:\n");
    auto live_services = live->GetNodesByLabel("Service");
    for (NodeId service : *live_services) {
      auto view = live->GetNode(service);
      std::printf("  %-8s %s\n", view->props.at("name").AsString().c_str(),
                  view->props.at("status").AsString().c_str());
    }
  }

  // GC respects the dashboard's snapshot...
  GcStats pinned = db->RunGc();
  std::printf("\ngc while dashboard open: reclaimed %llu versions "
              "(watermark pinned at %llu)\n",
              (unsigned long long)pinned.versions_pruned,
              (unsigned long long)pinned.watermark);

  // ... and reclaims everything the moment it closes.
  (void)dashboard->Commit();
  GcStats drained = db->RunGc();
  std::printf("gc after dashboard closed: reclaimed %llu versions\n",
              (unsigned long long)drained.versions_pruned);
  return 0;
}
