// neosi_server: serves a database over the wire protocol, then exercises it
// with an in-process client — the smallest end-to-end tour of the network
// session front-end.
//
//   $ ./example_neosi_server [data-dir] [port]
//
// With a port argument the server stays up until you press Enter, so you
// can point external clients (or a second copy of this binary's client
// half) at it. Without one it binds an ephemeral port, runs its own client
// traffic, prints the admission counters, and exits.
//
// docs/OPERATIONS.md § "Network front-end" covers every knob shown here.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "graph/graph_database.h"
#include "server/client.h"
#include "server/server.h"

using namespace neosi;

int main(int argc, char** argv) {
  const std::string dir = argc > 1
                              ? argv[1]
                              : (std::filesystem::temp_directory_path() /
                                 "neosi_server_demo")
                                    .string();
  const uint16_t port =
      argc > 2 ? static_cast<uint16_t>(std::atoi(argv[2])) : 0;
  std::filesystem::remove_all(dir);

  // 1. Open the database this server fronts. The directory lockfile means
  //    a second server on the same directory fails fast with Busy instead
  //    of corrupting this one.
  DatabaseOptions db_options;
  db_options.in_memory = false;
  db_options.path = dir;
  auto db_or = GraphDatabase::Open(db_options);
  if (!db_or.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 db_or.status().ToString().c_str());
    return 1;
  }
  auto db = std::move(*db_or);

  // 2. Start the front-end: one epoll thread multiplexing sessions over a
  //    fixed worker pool — no thread-per-connection.
  ServerOptions server_options;
  server_options.port = port;
  server_options.workers = 2;
  server_options.max_sessions = 64;
  server_options.idle_timeout_ms = 60'000;
  auto server_or = Server::Start(db.get(), server_options);
  if (!server_or.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 server_or.status().ToString().c_str());
    return 1;
  }
  auto server = std::move(*server_or);
  std::printf("serving %s on 127.0.0.1:%u\n", dir.c_str(), server->port());

  if (port != 0) {
    std::printf("press Enter to stop\n");
    (void)std::getchar();
  } else {
    // 3. Drive it like a remote application would: connect, retry-loop on
    //    retryable statuses, read back through the label index.
    Client client;
    if (!client.Connect("127.0.0.1", server->port()).ok()) {
      std::fprintf(stderr, "client connect failed\n");
      return 1;
    }
    for (int attempt = 0; attempt < 5; ++attempt) {
      auto begin = client.Begin(IsolationLevel::kSnapshotIsolation);
      if (!begin.ok() && begin.status().IsRetryable()) continue;
      auto alice = client.CreateNode({"Person"},
                                     {{"name", PropertyValue("alice")}});
      auto bob =
          client.CreateNode({"Person"}, {{"name", PropertyValue("bob")}});
      if (alice.ok() && bob.ok()) {
        (void)client.CreateRelationship(*alice, *bob, "KNOWS");
      }
      auto committed = client.Commit();
      if (committed.ok()) {
        std::printf("committed at ts=%llu\n",
                    static_cast<unsigned long long>(*committed));
        break;
      }
      if (!committed.status().IsRetryable()) {
        std::fprintf(stderr, "commit failed: %s\n",
                     committed.status().ToString().c_str());
        return 1;
      }
    }
    if (client.Begin(IsolationLevel::kSnapshotIsolation, true).ok()) {
      auto people = client.GetNodesByLabel("Person");
      std::printf("Person nodes over the wire: %zu\n",
                  people.ok() ? people->size() : 0);
      (void)client.Rollback();
    }

    const DatabaseStats stats = db->Stats();
    std::printf("admission: admitted=%llu delayed=%llu shed_backlog=%llu "
                "shed_sessions=%llu\n",
                static_cast<unsigned long long>(stats.admission_admitted),
                static_cast<unsigned long long>(stats.admission_delayed),
                static_cast<unsigned long long>(stats.admission_shed_backlog),
                static_cast<unsigned long long>(
                    stats.admission_shed_sessions));
  }

  server->Stop();  // Before the database: sessions abort their txns here.
  std::printf("server stopped cleanly\n");
  return 0;
}
