// Bank audit example: why isolation level matters for money.
//
// Transfers move money between accounts while an auditor sweeps all
// balances. The invariant: every audit must observe exactly the total that
// exists. Under read committed the auditor reads each account at a
// different time and can observe torn totals; under snapshot isolation the
// sweep sees one instant.
//
// Also demonstrates SI's one weakness — write skew (§1) — with the classic
// two-doctors-on-call constraint.
//
//   $ ./bank_audit

#include <atomic>
#include <cstdio>
#include <thread>

#include "common/random.h"
#include "graph/graph_database.h"
#include "workload/bank.h"
#include "workload/driver.h"

using namespace neosi;

int main() {
  DatabaseOptions options;
  options.in_memory = true;
  options.gc_backlog_threshold = 512;  // Backlog-nudged async GC daemon.
  auto db = std::move(*GraphDatabase::Open(options));

  auto bank = *BuildBank(*db, 64, 1000);
  std::printf("bank: %zu accounts x 1000 = total %lld\n",
              bank.accounts.size(), (long long)bank.ExpectedTotal());

  for (IsolationLevel audit_isolation :
       {IsolationLevel::kReadCommitted, IsolationLevel::kSnapshotIsolation}) {
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> audits{0}, torn{0};
    int64_t worst_delta = 0;

    std::thread auditor([&] {
      while (!stop.load()) {
        auto total = Audit(*db, bank, audit_isolation);
        if (!total.ok()) continue;
        audits.fetch_add(1);
        const int64_t delta = *total - bank.ExpectedTotal();
        if (delta != 0) {
          torn.fetch_add(1);
          if (std::abs(delta) > std::abs(worst_delta)) worst_delta = delta;
        }
      }
    });

    DriverResult transfers = RunForDuration(4, 400, [&](int t, uint64_t op) {
      Random rng(t * 7919 + op);
      return Transfer(*db, bank, rng.Uniform(64), rng.Uniform(64),
                      static_cast<int64_t>(rng.Uniform(100)),
                      IsolationLevel::kSnapshotIsolation);
    });
    stop.store(true);
    auditor.join();

    std::printf(
        "audit under %-18s: %6llu audits, %6llu torn totals (worst off by "
        "%lld) against %llu committed transfers\n",
        std::string(IsolationLevelToString(audit_isolation)).c_str(),
        (unsigned long long)audits.load(), (unsigned long long)torn.load(),
        (long long)worst_delta, (unsigned long long)transfers.committed);
  }
  // Money never vanishes for good: the final quiesced total is exact.
  std::printf("final settled total: %lld (expected %lld)\n",
              (long long)*Audit(*db, bank, IsolationLevel::kSnapshotIsolation),
              (long long)bank.ExpectedTotal());

  // --- Write skew: the anomaly SI does NOT prevent --------------------------
  std::printf("\nwrite-skew demo (doctors on call):\n");
  auto ward = *BuildWard(*db);
  auto t1 = db->Begin(IsolationLevel::kSnapshotIsolation);
  auto t2 = db->Begin(IsolationLevel::kSnapshotIsolation);
  // Each doctor checks the OTHER is on call, then goes off call.
  bool other_ok_1 = t1->GetNodeProperty(ward.doctor_b, "on_call")->AsBool();
  bool other_ok_2 = t2->GetNodeProperty(ward.doctor_a, "on_call")->AsBool();
  if (other_ok_1) {
    (void)t1->SetNodeProperty(ward.doctor_a, "on_call", PropertyValue(false));
  }
  if (other_ok_2) {
    (void)t2->SetNodeProperty(ward.doctor_b, "on_call", PropertyValue(false));
  }
  Status s1 = t1->Commit();
  Status s2 = t2->Commit();
  std::printf("  both commits: %s / %s (write sets are disjoint, so SI "
              "sees no conflict)\n",
              s1.ToString().c_str(), s2.ToString().c_str());
  std::printf("  constraint '>= 1 doctor on call' holds: %s\n",
              *WardConstraintHolds(*db, ward) ? "yes" : "NO (write skew!)");
  std::printf("  (TPC-C-style workloads never hit this — see "
              "bench_write_skew — and a materialized conflict on a shared "
              "ward token removes it.)\n");
  return 0;
}
