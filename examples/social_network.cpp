// Social network example: friend-of-friend recommendations computed inside
// one snapshot while the graph churns underneath.
//
// The recommendation job is the paper's "two-step graph algorithm" (§1):
// step 1 collects friends, step 2 collects their friends. Under read
// committed the friend list can change between the steps; under snapshot
// isolation the whole computation sees one consistent graph.
//
//   $ ./social_network

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <thread>

#include "common/random.h"
#include "graph/graph_database.h"
#include "workload/social_graph.h"

using namespace neosi;

namespace {

// Friend-of-friend recommendation: rank 2-hop neighbours by the number of
// common friends; runs entirely inside `txn`'s snapshot.
std::vector<std::pair<NodeId, int>> Recommend(Transaction& txn, NodeId who,
                                              size_t k) {
  auto friends = txn.GetNeighbors(who);
  if (!friends.ok()) return {};
  std::map<NodeId, int> counts;
  for (NodeId f : *friends) {
    auto theirs = txn.GetNeighbors(f);
    if (!theirs.ok()) continue;
    for (NodeId fof : *theirs) {
      if (fof == who) continue;
      if (std::find(friends->begin(), friends->end(), fof) != friends->end())
        continue;
      ++counts[fof];
    }
  }
  std::vector<std::pair<NodeId, int>> ranked(counts.begin(), counts.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

}  // namespace

int main() {
  DatabaseOptions options;
  options.in_memory = true;
  options.gc_backlog_threshold = 512;  // Backlog-nudged async GC daemon.
  auto db = std::move(*GraphDatabase::Open(options));

  SocialGraphSpec spec;
  spec.people = 3000;
  spec.extra_edges_per_person = 3;
  auto graph = *BuildSocialGraph(*db, spec);
  std::printf("built social graph: %zu people, %zu friendships\n",
              graph.people.size(), graph.friendships.size());

  // Churn: friendships form and dissolve concurrently.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> churn_commits{0};
  std::thread churn([&] {
    Random rng(42);
    while (!stop.load()) {
      auto txn = db->Begin();
      const NodeId a = graph.people[rng.Uniform(graph.people.size())];
      if (rng.Bernoulli(0.5)) {
        const NodeId b = graph.people[rng.Uniform(graph.people.size())];
        if (a != b && txn->CreateRelationship(a, b, "KNOWS").ok() &&
            txn->Commit().ok()) {
          churn_commits.fetch_add(1);
        }
      } else {
        auto rels = txn->GetRelationships(a);
        if (rels.ok() && !rels->empty() &&
            txn->DeleteRelationship((*rels)[rng.Uniform(rels->size())])
                .ok() &&
            txn->Commit().ok()) {
          churn_commits.fetch_add(1);
        }
      }
    }
  });

  // Recommendation jobs under snapshot isolation: each job's two steps see
  // one frozen graph, so the rankings are internally consistent.
  Random rng(7);
  uint64_t jobs = 0, inconsistencies = 0;
  for (int i = 0; i < 200; ++i) {
    auto txn = db->Begin(IsolationLevel::kSnapshotIsolation);
    const NodeId who = graph.people[rng.Uniform(graph.people.size())];
    auto first = Recommend(*txn, who, 5);
    // Re-running the job inside the same snapshot must give the identical
    // answer, however fast the graph is churning outside.
    auto second = Recommend(*txn, who, 5);
    ++jobs;
    if (first != second) ++inconsistencies;
    if (i == 0 && !first.empty()) {
      std::printf("sample recommendations for person %llu:\n",
                  (unsigned long long)who);
      for (const auto& [candidate, common] : first) {
        auto name = txn->GetNodeProperty(candidate, "name");
        std::printf("  %s (%d common friends)\n",
                    name.ok() ? name->AsString().c_str() : "?", common);
      }
    }
  }
  stop.store(true);
  churn.join();

  std::printf("ran %llu recommendation jobs against %llu concurrent "
              "friendship changes: %llu inconsistent re-runs\n",
              (unsigned long long)jobs,
              (unsigned long long)churn_commits.load(),
              (unsigned long long)inconsistencies);
  std::printf("(under read committed the re-runs would disagree whenever a "
              "friendship changed mid-job)\n");

  DatabaseStats stats = db->Stats();
  std::printf("engine: %llu commits applied, gc reclaimed %llu versions\n",
              (unsigned long long)stats.last_committed,
              (unsigned long long)stats.gc_reclaimed);
  return inconsistencies == 0 ? 0 : 1;
}
