// Replication pair: an on-disk primary plus a read replica tailing its WAL
// segment directory, in one process. The same wiring works cross-process —
// the replica only ever opens the primary's files read-only.
//
//   $ ./example_replication_pair [data-dir]
//
// docs/OPERATIONS.md walks through this topology knob by knob.

#include <cstdio>
#include <filesystem>
#include <string>

#include "graph/graph_database.h"

using namespace neosi;

int main(int argc, char** argv) {
  const std::string root = argc > 1
                               ? argv[1]
                               : (std::filesystem::temp_directory_path() /
                                  "neosi_replication_pair")
                                     .string();
  std::filesystem::remove_all(root);
  std::filesystem::create_directories(root + "/primary");
  std::filesystem::create_directories(root + "/replica");

  // 1. The primary: a normal on-disk database. wal_keep_segments retains
  //    checkpointed segments so a lagging replica can still ship them.
  DatabaseOptions primary_options;
  primary_options.in_memory = false;
  primary_options.path = root + "/primary";
  primary_options.sync_commits = true;
  primary_options.wal_keep_segments = 16;
  auto primary_or = GraphDatabase::Open(primary_options);
  if (!primary_or.ok()) {
    std::fprintf(stderr, "primary open failed: %s\n",
                 primary_or.status().ToString().c_str());
    return 1;
  }
  auto primary = std::move(*primary_or);

  // 2. The replica: points replica_of_path at the primary's directory and
  //    gets its own directory for the re-logged WAL it recovers from.
  DatabaseOptions replica_options;
  replica_options.in_memory = false;
  replica_options.path = root + "/replica";
  replica_options.replica_of_path = root + "/primary";
  replica_options.replica_poll_interval_ms = 1;
  auto replica_or = GraphDatabase::Open(replica_options);
  if (!replica_or.ok()) {
    std::fprintf(stderr, "replica open failed: %s\n",
                 replica_or.status().ToString().c_str());
    return 1;
  }
  auto replica = std::move(*replica_or);

  // 3. Write on the primary.
  NodeId alice;
  {
    auto txn = primary->Begin();
    alice = *txn->CreateNode({"Person"}, {{"name", PropertyValue("alice")}});
    Status s = txn->Commit();
    if (!s.ok()) {
      std::fprintf(stderr, "commit failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  // 4. Wait for the applier daemon to ship and publish that commit, then
  //    read it on the replica at its replay-watermark snapshot.
  if (!replica->replica_applier()->WaitCaughtUp(/*timeout_ms=*/10'000)) {
    std::fprintf(stderr, "replica never caught up: %s\n",
                 replica->replica_applier()->last_error().ToString().c_str());
    return 1;
  }
  {
    auto reader = replica->Begin();  // Snapshot isolation, read-only host.
    auto view = reader->GetNode(alice);
    if (!view.ok()) {
      std::fprintf(stderr, "replica read failed: %s\n",
                   view.status().ToString().c_str());
      return 1;
    }
    std::printf("replica sees node %llu name=%s\n",
                (unsigned long long)alice,
                view->props.at("name").ToString().c_str());
  }

  // 5. Writes on the replica fail fast with a RETRYABLE routing status.
  {
    auto txn = replica->Begin();
    Status s = txn->CreateNode({"Person"}).status();
    std::printf("write on replica: %s (retryable=%s)\n",
                s.ToString().c_str(), s.IsRetryable() ? "yes" : "no");
    if (!s.IsReplicaReadOnly()) return 1;
  }

  // 6. Replication gauges: lag = primary watermark - replica watermark.
  const DatabaseStats primary_stats = primary->Stats();
  const DatabaseStats replica_stats = replica->Stats();
  std::printf("primary last_committed=%llu replica applied_ts=%llu "
              "(lag %llu commits), %llu records shipped\n",
              (unsigned long long)primary_stats.last_committed,
              (unsigned long long)replica_stats.replica_applied_ts,
              (unsigned long long)(primary_stats.last_committed -
                                   replica_stats.replica_applied_ts),
              (unsigned long long)replica_stats.replica_records_applied);

  replica.reset();  // Stop tailing before the primary goes away.
  primary.reset();
  std::filesystem::remove_all(root);
  std::printf("ok\n");
  return 0;
}
